//! The transport seam: every inter-client effect travels as an
//! explicit [`GossipMessage`] through the [`Transport`] trait.
//!
//! The asynchronous simulator and the networked peer share one message
//! flow: a publication becomes a [`TxMessage`] (network id, parent
//! ids, `Arc`-shared weights, metadata), the transport delivers it to
//! every peer as an [`Envelope`] stamped with the arrival time, and
//! each [`Replica`](crate::Replica) attaches what is solid and buffers
//! the rest. Two implementations exist:
//!
//! * [`LoopbackTransport`] — in-process, deterministic. Per-link
//!   delays are drawn from the caller's RNG through the configured
//!   [`DelayModel`] in ascending peer order, which reproduces the
//!   exact RNG stream of the pre-transport simulator: simulations are
//!   bit-identical to the direct-mutation implementation it replaced.
//! * [`TcpTransport`](crate::TcpTransport) — real sockets with the
//!   length-prefixed wire format of [`crate::wire`], used by
//!   `dagfl peer`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::{CoreError, DelayModel};

/// A model-update transaction in transit: the network representation
/// of one tangle attachment.
///
/// Network ids are transport-scoped: the loopback transport uses the
/// dense index of the simulator's global tangle, TCP peers derive ids
/// from `(issuer, sequence)` so ids never collide without
/// coordination. Id `0` is always the genesis, which every replica
/// holds from construction and which is never gossiped.
#[derive(Debug, Clone, PartialEq)]
pub struct TxMessage {
    /// Network id of this transaction.
    pub id: u64,
    /// Network ids of the approved transactions (1–2 entries;
    /// duplicates allowed, the tangle collapses them).
    pub parents: Vec<u64>,
    /// The flat model weights, shared — broadcasting to `n` peers
    /// costs `n` pointers, not `n` weight copies.
    pub params: Arc<Vec<f32>>,
    /// The publishing client.
    pub issuer: Option<u32>,
    /// The round (logical publish time) recorded with the transaction.
    pub round: u32,
}

/// What peers exchange: individual transactions, or a batch of them
/// when a late joiner catches up from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMessage {
    /// One freshly published transaction.
    Transaction(TxMessage),
    /// A topologically ordered batch answering a snapshot request.
    Snapshot(Vec<TxMessage>),
}

impl GossipMessage {
    /// Tie-break key for deliveries that share an arrival time: the
    /// transaction's network id (snapshots sort first).
    pub fn sort_key(&self) -> u64 {
        match self {
            GossipMessage::Transaction(msg) => msg.id,
            GossipMessage::Snapshot(_) => 0,
        }
    }
}

/// A message en route to (or arrived at) one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Logical arrival time at the receiver.
    pub at: f64,
    /// The delivered message.
    pub message: GossipMessage,
}

/// Delivery accounting of a transport: latency of scheduled links plus
/// the fault/health counters a chaos harness asserts on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportStats {
    /// Sum of all sampled per-link delays.
    pub latency_sum: f64,
    /// Number of per-link deliveries scheduled.
    pub latency_count: usize,
    /// Largest sampled per-link delay.
    pub latency_max: f64,
    /// Envelopes actually handed to a receiver.
    pub delivered: usize,
    /// Envelopes discarded before delivery (injected drops, crashed
    /// endpoints, dead sockets).
    pub dropped: usize,
    /// Extra copies created by duplication faults.
    pub duplicated: usize,
    /// Successful connection re-establishments (networked mode only).
    pub reconnects: usize,
}

impl TransportStats {
    /// Records one per-link delay.
    pub fn record(&mut self, delay: f64) {
        self.latency_sum += delay;
        self.latency_count += 1;
        if delay > self.latency_max {
            self.latency_max = delay;
        }
    }

    /// Mean per-link delay (`0.0` before any delivery).
    pub fn mean_latency(&self) -> f64 {
        if self.latency_count > 0 {
            self.latency_sum / self.latency_count as f64
        } else {
            0.0
        }
    }

    /// `true` when any fault counter is non-zero — the gate for the
    /// extra report line, so fault-free runs print byte-identically.
    pub fn has_faults(&self) -> bool {
        self.dropped > 0 || self.duplicated > 0 || self.reconnects > 0
    }
}

/// Moves gossip messages between peers.
///
/// The contract: [`Transport::broadcast`] schedules one delivery per
/// peer other than the sender; [`Transport::receive`] hands a peer
/// every envelope whose arrival time has passed, at most once, in
/// scheduling order. Implementations decide what "time" means — the
/// loopback uses the simulator's logical clock, TCP uses the wall
/// clock of the receiving process.
pub trait Transport {
    /// Number of peers this transport connects (including the sender).
    fn num_peers(&self) -> usize;

    /// Sends `message` from peer `from` to every other peer. The RNG
    /// is the caller's event-loop RNG so deterministic transports can
    /// sample link delays from the single seeded stream.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when a message cannot be handed to the
    /// network (e.g. a broken socket).
    fn broadcast(
        &mut self,
        from: usize,
        now: f64,
        message: GossipMessage,
        rng: &mut StdRng,
    ) -> Result<(), CoreError>;

    /// Removes and returns every envelope for `peer` whose arrival
    /// time is `<= now`.
    fn receive(&mut self, peer: usize, now: f64) -> Vec<Envelope>;

    /// Envelopes addressed to `peer` that have not been received yet
    /// (empty for transports that cannot observe the network).
    fn in_flight(&self, peer: usize) -> &[Envelope];

    /// Latency accounting so far.
    fn stats(&self) -> TransportStats;
}

/// The in-process transport: per-peer inboxes with per-link delays
/// drawn from a [`DelayModel`].
///
/// # Example
///
/// ```
/// use dagfl_core::{DelayModel, GossipMessage, LoopbackTransport, Transport, TxMessage};
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::sync::Arc;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut transport = LoopbackTransport::new(DelayModel::constant(1.0), vec![false; 3]);
/// let msg = GossipMessage::Transaction(TxMessage {
///     id: 1,
///     parents: vec![0],
///     params: Arc::new(vec![0.5]),
///     issuer: Some(0),
///     round: 0,
/// });
/// transport.broadcast(0, 0.0, msg, &mut rng).unwrap();
/// assert!(transport.receive(1, 0.5).is_empty()); // still in flight
/// assert_eq!(transport.receive(1, 1.0).len(), 1);
/// ```
#[derive(Debug)]
pub struct LoopbackTransport {
    delay: DelayModel,
    slow_cohort: Vec<bool>,
    inboxes: Vec<Vec<Envelope>>,
    stats: TransportStats,
    fanout: usize,
}

impl LoopbackTransport {
    /// Creates a loopback network of `slow_cohort.len()` peers with
    /// the given per-link delay model and per-peer cohort flags.
    pub fn new(delay: DelayModel, slow_cohort: Vec<bool>) -> Self {
        let n = slow_cohort.len();
        Self {
            delay,
            slow_cohort,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            stats: TransportStats::default(),
            fanout: 0,
        }
    }

    /// Restricts each broadcast to a deterministic random sample of
    /// `fanout` receivers (builder style). `0` — or any value at least
    /// the peer count minus one — keeps full broadcast, and in that
    /// case the RNG stream is untouched: fanout-free simulations stay
    /// bit-identical.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// The peers a broadcast from `from` reaches, in ascending order.
    /// With fanout active this consumes `fanout` draws from `rng` (a
    /// partial Fisher–Yates over the other peers); otherwise it is
    /// everyone but the sender with zero draws.
    fn receivers(&self, from: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut others: Vec<usize> = (0..self.inboxes.len()).filter(|&p| p != from).collect();
        if self.fanout == 0 || self.fanout >= others.len() {
            return others;
        }
        for i in 0..self.fanout {
            let j = rng.gen_range(i..others.len());
            others.swap(i, j);
        }
        others.truncate(self.fanout);
        others.sort_unstable();
        others
    }
}

impl Transport for LoopbackTransport {
    fn num_peers(&self) -> usize {
        self.inboxes.len()
    }

    fn broadcast(
        &mut self,
        from: usize,
        now: f64,
        message: GossipMessage,
        rng: &mut StdRng,
    ) -> Result<(), CoreError> {
        let publisher_slow = self.slow_cohort[from];
        // Ascending peer order: the delay samples consume the caller's
        // RNG in a fixed, documented sequence — this is what keeps
        // whole-simulation determinism across refactors. (Fanout
        // sampling, when active, draws first, then delays follow in
        // the same ascending order over the selected subset.)
        for peer in self.receivers(from, rng) {
            let delay = self
                .delay
                .sample(publisher_slow, self.slow_cohort[peer], rng);
            self.stats.record(delay);
            self.inboxes[peer].push(Envelope {
                at: now + delay,
                message: message.clone(),
            });
        }
        Ok(())
    }

    fn receive(&mut self, peer: usize, now: f64) -> Vec<Envelope> {
        let inbox = std::mem::take(&mut self.inboxes[peer]);
        let (due, keep): (Vec<Envelope>, Vec<Envelope>) =
            inbox.into_iter().partition(|e| e.at <= now);
        self.inboxes[peer] = keep;
        self.stats.delivered += due.len();
        due
    }

    fn in_flight(&self, peer: usize) -> &[Envelope] {
        &self.inboxes[peer]
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tx(id: u64, parents: &[u64]) -> GossipMessage {
        GossipMessage::Transaction(TxMessage {
            id,
            parents: parents.to_vec(),
            params: Arc::new(vec![id as f32]),
            issuer: Some(0),
            round: 0,
        })
    }

    #[test]
    fn broadcast_skips_the_sender() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = LoopbackTransport::new(DelayModel::constant(0.0), vec![false; 3]);
        t.broadcast(1, 0.0, tx(1, &[0]), &mut rng).unwrap();
        assert!(t.receive(1, 10.0).is_empty());
        assert_eq!(t.receive(0, 10.0).len(), 1);
        assert_eq!(t.receive(2, 10.0).len(), 1);
        assert_eq!(t.num_peers(), 3);
    }

    #[test]
    fn receive_honours_arrival_times_and_is_once_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = LoopbackTransport::new(DelayModel::constant(2.0), vec![false; 2]);
        t.broadcast(0, 1.0, tx(1, &[0]), &mut rng).unwrap();
        assert_eq!(t.in_flight(1).len(), 1);
        assert!(t.receive(1, 2.9).is_empty());
        let due = t.receive(1, 3.0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, 3.0);
        assert!(t.receive(1, 100.0).is_empty(), "delivery must be once-only");
        assert!(t.in_flight(1).is_empty());
    }

    #[test]
    fn stats_track_every_link() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = LoopbackTransport::new(DelayModel::constant(1.5), vec![false; 4]);
        t.broadcast(0, 0.0, tx(1, &[0]), &mut rng).unwrap();
        let s = t.stats();
        assert_eq!(s.latency_count, 3);
        assert_eq!(s.mean_latency(), 1.5);
        assert_eq!(s.latency_max, 1.5);
    }

    #[test]
    fn cohort_delays_differ_per_link() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = DelayModel::Cohorts {
            slow_fraction: 0.5,
            fast: 1.0,
            slow: 9.0,
            jitter: 0.0,
        };
        let mut t = LoopbackTransport::new(model, vec![false, false, true]);
        t.broadcast(0, 0.0, tx(1, &[0]), &mut rng).unwrap();
        assert_eq!(t.in_flight(1)[0].at, 1.0, "fast link");
        assert_eq!(t.in_flight(2)[0].at, 9.0, "slow link");
    }

    #[test]
    fn sort_key_is_the_transaction_id() {
        assert_eq!(tx(42, &[0]).sort_key(), 42);
        assert_eq!(GossipMessage::Snapshot(vec![]).sort_key(), 0);
    }

    #[test]
    fn stats_default_mean_is_zero() {
        assert_eq!(TransportStats::default().mean_latency(), 0.0);
        assert!(!TransportStats::default().has_faults());
    }

    #[test]
    fn receive_counts_deliveries() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = LoopbackTransport::new(DelayModel::constant(0.0), vec![false; 3]);
        t.broadcast(0, 0.0, tx(1, &[0]), &mut rng).unwrap();
        t.receive(1, 1.0);
        t.receive(2, 1.0);
        assert_eq!(t.stats().delivered, 2);
    }

    #[test]
    fn fanout_limits_receivers_and_is_seed_deterministic() {
        let deliveries = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t =
                LoopbackTransport::new(DelayModel::constant(0.0), vec![false; 6]).with_fanout(2);
            t.broadcast(0, 0.0, tx(1, &[0]), &mut rng).unwrap();
            (0..6).filter(|&p| !t.receive(p, 10.0).is_empty()).collect()
        };
        let reached = deliveries(9);
        assert_eq!(reached.len(), 2, "fanout 2 must reach exactly 2 peers");
        assert!(!reached.contains(&0), "the sender never receives");
        assert_eq!(reached, deliveries(9), "same seed, same sample");
    }

    #[test]
    fn saturating_fanout_is_full_broadcast_with_identical_rng_stream() {
        let run = |fanout: usize| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut t = LoopbackTransport::new(
                DelayModel::UniformJitter {
                    base: 1.0,
                    jitter: 0.5,
                },
                vec![false; 4],
            )
            .with_fanout(fanout);
            t.broadcast(0, 0.0, tx(1, &[0]), &mut rng).unwrap();
            (1..4).map(|p| t.in_flight(p)[0].at).collect::<Vec<f64>>()
        };
        // fanout >= n-1 must not consume sampling draws: the delay
        // sequence matches full broadcast exactly.
        assert_eq!(run(0), run(3));
        assert_eq!(run(0), run(99));
    }
}
