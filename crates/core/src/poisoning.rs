//! Flipped-label poisoning scenarios (§5.3.4).
//!
//! The experiment: train clean for 100 rounds, then flip labels 3 ↔ 8 in
//! the train *and* test data of a fraction `p` of clients, continue for
//! another 100 rounds and measure per round:
//!
//! * the fraction of class-3/8 test samples mispredicted as the other
//!   class using each client's walk-selected reference model (Figure 12),
//! * the average number of poisoned transactions directly or indirectly
//!   approved by the reference (Figure 13),
//! * and, at the end, how poisoned clients distribute over the Louvain
//!   communities (Figure 14).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_datasets::{flip_labels, FederatedDataset, PoisonReport};

use crate::{CoreError, DagConfig, ModelFactory, RoundMetrics, Simulation};

/// Configuration of a poisoning experiment.
#[derive(Debug, Clone, Copy)]
pub struct PoisoningConfig {
    /// The underlying simulation configuration. `dag.rounds` is ignored;
    /// `clean_rounds + attack_rounds` rounds are run instead.
    pub dag: DagConfig,
    /// Rounds of clean training before the attack (the paper uses 100).
    pub clean_rounds: usize,
    /// Rounds after the labels are flipped (the paper uses another 100).
    pub attack_rounds: usize,
    /// Fraction `p` of clients whose labels are flipped.
    pub poison_fraction: f64,
    /// First flipped class (the paper uses 3).
    pub class_a: usize,
    /// Second flipped class (the paper uses 8).
    pub class_b: usize,
    /// Evaluate the poisoning metrics every this many attack rounds
    /// (1 = every round).
    pub measure_every: usize,
}

impl Default for PoisoningConfig {
    fn default() -> Self {
        Self {
            dag: DagConfig::default(),
            clean_rounds: 100,
            attack_rounds: 100,
            poison_fraction: 0.2,
            class_a: 3,
            class_b: 8,
            measure_every: 5,
        }
    }
}

/// Poisoning metrics measured after one attack round.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonRoundMetrics {
    /// Global round index at measurement time.
    pub round: usize,
    /// Mean fraction of class-3/8 test samples predicted as the opposite
    /// class, over all clients with such samples (Figure 12's
    /// "flipped predictions").
    pub flipped_fraction: f64,
    /// Mean number of poisoned transactions in the past cone of a client's
    /// reference tips (Figure 13).
    pub approved_poisoned: f64,
}

/// Orchestrates a flipped-label attack on a [`Simulation`].
pub struct PoisoningScenario {
    config: PoisoningConfig,
    simulation: Simulation,
    report: Option<PoisonReport>,
}

impl PoisoningScenario {
    /// Creates a scenario over the given dataset and model factory.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Simulation::new`] or if the flip
    /// classes are invalid for the dataset.
    pub fn new(config: PoisoningConfig, dataset: FederatedDataset, factory: ModelFactory) -> Self {
        assert!(
            config.class_a < dataset.num_classes() && config.class_b < dataset.num_classes(),
            "flip classes out of range"
        );
        assert!(config.measure_every > 0, "measure_every must be positive");
        let mut dag = config.dag;
        dag.rounds = config.clean_rounds + config.attack_rounds;
        let simulation = Simulation::new(dag, dataset, factory);
        Self {
            config,
            simulation,
            report: None,
        }
    }

    /// The underlying simulation (for inspecting the tangle or metrics).
    pub fn simulation(&self) -> &Simulation {
        &self.simulation
    }

    /// Which clients were poisoned (available after the attack started).
    pub fn report(&self) -> Option<&PoisonReport> {
        self.report.as_ref()
    }

    /// Runs the full scenario and returns the per-measurement metrics of
    /// the attack phase.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run(&mut self) -> Result<Vec<PoisonRoundMetrics>, CoreError> {
        for _ in 0..self.config.clean_rounds {
            self.simulation.run_round()?;
        }
        self.start_attack();
        let mut measurements = Vec::new();
        for attack_round in 0..self.config.attack_rounds {
            self.simulation.run_round()?;
            if (attack_round + 1) % self.config.measure_every == 0 {
                measurements.push(self.measure()?);
            }
        }
        Ok(measurements)
    }

    /// Flips the labels now (used by [`PoisoningScenario::run`]; exposed
    /// for custom schedules).
    pub fn start_attack(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.config.dag.seed ^ 0x0BAD_C0DE);
        let report = flip_labels(
            &mut self.simulation.dataset,
            self.config.class_a,
            self.config.class_b,
            self.config.poison_fraction,
            &mut rng,
        );
        // Cached evaluations refer to the pre-attack labels: bump every
        // client's cache generation so they can never be served again.
        self.simulation.clear_caches();
        self.report = Some(report);
    }

    /// Measures the Figure 12/13 quantities against the current tangle.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn measure(&mut self) -> Result<PoisonRoundMetrics, CoreError> {
        let (class_a, class_b) = (self.config.class_a, self.config.class_b);
        let poisoned: Vec<u32> = self
            .report
            .as_ref()
            .map(|r| r.poisoned_clients.clone())
            .unwrap_or_default();
        let config = self.simulation.config;
        // Materialize a single-owner snapshot once: `past_cone` is an
        // inherent `Tangle` traversal, and payloads are `Arc`-shared so
        // the copy is cheap.
        let tangle = self.simulation.tangle.to_tangle();
        let mut flip_fractions = Vec::new();
        let mut approved_counts = Vec::new();
        for idx in 0..self.simulation.dataset.num_clients() {
            let data = &self.simulation.dataset.clients()[idx];
            let client = &mut self.simulation.clients[idx];
            let (params, (tip1, tip2)) = client.reference_model(&tangle, data, &config)?;
            // Poisoned transactions in the union of the reference past
            // cones.
            let mut cone = tangle.past_cone(tip1)?;
            cone.extend(tangle.past_cone(tip2)?);
            let poisoned_in_cone = cone
                .iter()
                .filter(|&&id| {
                    tangle
                        .get(id)
                        .ok()
                        .and_then(|tx| tx.issuer())
                        .is_some_and(|issuer| poisoned.contains(&issuer))
                })
                .count();
            approved_counts.push(poisoned_in_cone as f64);
            // Flipped predictions on the client's class-a/b test samples.
            // Labels are the *clean* ground truth: for poisoned clients the
            // stored labels were flipped, so flip them back for
            // measurement.
            let predictions = client.predict_with(&params, data.test_x())?;
            let is_poisoned = poisoned.contains(&(idx as u32));
            let mut relevant = 0usize;
            let mut flipped = 0usize;
            for (&stored, &pred) in data.test_y().iter().zip(&predictions) {
                let truth = if is_poisoned && (stored == class_a || stored == class_b) {
                    // Undo the attack's flip to recover the clean label.
                    if stored == class_a {
                        class_b
                    } else {
                        class_a
                    }
                } else {
                    stored
                };
                if truth == class_a || truth == class_b {
                    relevant += 1;
                    let other = if truth == class_a { class_b } else { class_a };
                    if pred == other {
                        flipped += 1;
                    }
                }
            }
            if relevant > 0 {
                flip_fractions.push(flipped as f64 / relevant as f64);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        Ok(PoisonRoundMetrics {
            round: self.simulation.round(),
            flipped_fraction: mean(&flip_fractions),
            approved_poisoned: mean(&approved_counts),
        })
    }

    /// The Figure 14 analysis: for each Louvain community of the final
    /// client graph, how many benign and poisoned clients it contains.
    /// Returns `(community, benign, poisoned)` rows sorted by community.
    pub fn poisoned_cluster_distribution(&self) -> Vec<(usize, usize, usize)> {
        let metrics = self.simulation.specialization_metrics();
        let poisoned: Vec<u32> = self
            .report
            .as_ref()
            .map(|r| r.poisoned_clients.clone())
            .unwrap_or_default();
        let mut rows: std::collections::BTreeMap<usize, (usize, usize)> =
            std::collections::BTreeMap::new();
        for (client, &community) in metrics.partition.iter().enumerate() {
            let entry = rows.entry(community).or_insert((0, 0));
            if poisoned.contains(&(client as u32)) {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        rows.into_iter()
            .map(|(community, (benign, bad))| (community, benign, bad))
            .collect()
    }
}

impl std::fmt::Debug for PoisoningScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoisoningScenario")
            .field("round", &self.simulation.round())
            .field("attack_started", &self.report.is_some())
            .finish()
    }
}

/// Convenience: per-round mean accuracy history of a slice of metrics.
pub fn mean_accuracy_series(history: &[RoundMetrics]) -> Vec<f32> {
    history.iter().map(RoundMetrics::mean_accuracy).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_datasets::{fmnist_by_author, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::sync::Arc;

    use crate::ModelFactory;

    fn factory(features: usize) -> ModelFactory {
        Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        })
    }

    fn small_scenario(poison_fraction: f64) -> PoisoningScenario {
        let dataset = fmnist_by_author(&FmnistConfig {
            num_clients: 6,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let config = PoisoningConfig {
            dag: DagConfig {
                clients_per_round: 3,
                local_batches: 3,
                ..DagConfig::default()
            },
            clean_rounds: 3,
            attack_rounds: 4,
            poison_fraction,
            measure_every: 2,
            ..PoisoningConfig::default()
        };
        PoisoningScenario::new(config, dataset, factory(features))
    }

    #[test]
    fn scenario_runs_and_measures() {
        let mut scenario = small_scenario(0.3);
        let measurements = scenario.run().unwrap();
        assert_eq!(measurements.len(), 2);
        let report = scenario.report().unwrap();
        assert_eq!(report.poisoned_clients.len(), 2); // round(0.3 * 6)
        for m in &measurements {
            assert!((0.0..=1.0).contains(&m.flipped_fraction));
            assert!(m.approved_poisoned >= 0.0);
        }
    }

    #[test]
    fn zero_fraction_poisons_nothing() {
        let mut scenario = small_scenario(0.0);
        let measurements = scenario.run().unwrap();
        assert!(scenario.report().unwrap().poisoned_clients.is_empty());
        for m in &measurements {
            assert_eq!(m.approved_poisoned, 0.0);
        }
    }

    #[test]
    fn cluster_distribution_accounts_for_everyone() {
        let mut scenario = small_scenario(0.3);
        scenario.run().unwrap();
        let rows = scenario.poisoned_cluster_distribution();
        let total: usize = rows.iter().map(|(_, b, p)| b + p).sum();
        assert_eq!(total, 6);
        let poisoned: usize = rows.iter().map(|(_, _, p)| p).sum();
        assert_eq!(poisoned, 2);
    }

    #[test]
    fn measure_before_attack_reports_zero_poison() {
        let mut scenario = small_scenario(0.3);
        // Run a couple of clean rounds manually and measure: no poisons
        // exist yet.
        scenario.simulation.run_round().unwrap();
        let m = scenario.measure().unwrap();
        assert_eq!(m.approved_poisoned, 0.0);
    }

    #[test]
    fn label_flip_invalidates_evaluation_caches() {
        // Every client is active every round so the caches are warm when
        // the attack starts.
        let dataset = fmnist_by_author(&FmnistConfig {
            num_clients: 4,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let config = PoisoningConfig {
            dag: DagConfig {
                clients_per_round: 4,
                local_batches: 6,
                ..DagConfig::default()
            },
            clean_rounds: 4,
            attack_rounds: 1,
            poison_fraction: 0.5,
            measure_every: 1,
            ..PoisoningConfig::default()
        };
        let mut scenario = PoisoningScenario::new(config, dataset, factory(features));
        for _ in 0..config.clean_rounds {
            scenario.simulation.run_round().unwrap();
        }
        let warm = scenario.simulation.history().last().unwrap().clone();
        assert!(
            warm.cached_evaluations > 0,
            "warm-cache rounds must serve cache hits before the attack"
        );
        scenario.start_attack();
        let post_attack = scenario.simulation.run_round().unwrap();
        // The generation bump forces the walks over the *existing* tangle
        // to re-evaluate: the first post-attack round must perform at
        // least as many fresh evaluations as candidate lookups it would
        // otherwise have served from the cache.
        assert!(
            post_attack.fresh_evaluations > warm.fresh_evaluations,
            "label flip must force re-evaluation: {} fresh after attack vs {} before",
            post_attack.fresh_evaluations,
            warm.fresh_evaluations
        );
    }

    #[test]
    fn mean_accuracy_series_matches_history() {
        let mut scenario = small_scenario(0.2);
        scenario.run().unwrap();
        let series = mean_accuracy_series(scenario.simulation().history());
        assert_eq!(series.len(), 7);
    }
}
