//! A participating client: the four-step loop of Figure 1.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_datasets::ClientDataset;
use dagfl_nn::{average_parameters, Evaluation, Model, SgdConfig};
use dagfl_tangle::{CumulativeWeightBias, RandomWalker, TangleRead, TxId, UniformBias};
use dagfl_tensor::Matrix;

use crate::{
    AccuracyBias, CoreError, DagConfig, EvalCounters, ModelEvaluator, ModelPayload, PublishGate,
    TipSelector,
};

/// Result of one client's participation in a round.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The client that trained.
    pub client: u32,
    /// The two tips selected by the biased random walks.
    pub parents: (TxId, TxId),
    /// Performance of the averaged parent model (the client's current
    /// consensus reference) on local test data, before training.
    pub reference: Evaluation,
    /// Performance of the locally trained model on local test data.
    pub trained: Evaluation,
    /// The trained parameters if the publish rule fired (training improved
    /// the model), to be attached to the tangle.
    pub published: Option<Vec<f32>>,
    /// Wall-clock time of tip selection (both walks, including candidate
    /// evaluation) — the quantity of Figure 15.
    pub walk_duration: Duration,
    /// Total walk steps over both walks.
    pub walk_steps: usize,
    /// Total candidate models whose transition weight was computed.
    pub candidates_evaluated: usize,
    /// Fresh (forward-pass) evaluations this round, walks and publish
    /// gate included.
    pub fresh_evaluations: usize,
    /// Evaluations answered from the per-transaction accuracy cache.
    pub cached_evaluations: usize,
}

/// The client-side state of the Specializing DAG: the client's private
/// RNG plus a [`ModelEvaluator`] owning the scratch model and the
/// generation-stamped per-transaction accuracy cache.
pub struct DagClient {
    id: u32,
    rng: StdRng,
    evaluator: ModelEvaluator,
}

impl DagClient {
    /// Creates a client with a freshly initialised scratch model.
    pub fn new(id: u32, model: Box<dyn Model>, seed: u64) -> Self {
        Self {
            id,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            evaluator: ModelEvaluator::new(model),
        }
    }

    /// The client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of cached transaction evaluations valid under the current
    /// cache generation.
    pub fn cache_len(&self) -> usize {
        self.evaluator.cache_len()
    }

    /// Invalidates all cached evaluations (by bumping the evaluator's
    /// cache generation). Must be called when the client's local data
    /// changes (e.g. after a poisoning attack flips labels).
    pub fn clear_cache(&mut self) {
        self.evaluator.invalidate();
    }

    /// Cumulative fresh/cached evaluation counts of this client's
    /// evaluator.
    pub fn eval_counters(&self) -> EvalCounters {
        self.evaluator.counters()
    }

    /// Runs one biased random walk and returns `(tip, steps, evaluations)`.
    fn walk_once<T: TangleRead<ModelPayload>>(
        &mut self,
        tangle: &T,
        data: &ClientDataset,
        cfg: &DagConfig,
    ) -> Result<(TxId, usize, usize), CoreError> {
        let start = tangle.sample_walk_start(cfg.walk_depth.0, cfg.walk_depth.1, &mut self.rng);
        let walker = RandomWalker::new();
        match cfg.tip_selector {
            TipSelector::Accuracy {
                alpha,
                normalization,
            } => {
                let mut bias = AccuracyBias::new(
                    &mut self.evaluator,
                    data.test_x(),
                    data.test_y(),
                    alpha,
                    normalization,
                );
                if let Some(margin) = cfg.walk_stop_margin {
                    bias = bias.with_stop_margin(margin);
                }
                let result = walker.walk(tangle, start, &mut bias, &mut self.rng)?;
                Ok((result.tip, result.steps, result.candidates_evaluated))
            }
            TipSelector::Random => {
                let result = walker.walk(tangle, start, &mut UniformBias, &mut self.rng)?;
                Ok((result.tip, result.steps, 0))
            }
            TipSelector::CumulativeWeight { alpha } => {
                let mut bias = CumulativeWeightBias::new(alpha);
                let result = walker.walk(tangle, start, &mut bias, &mut self.rng)?;
                Ok((result.tip, result.steps, 0))
            }
        }
    }

    /// Selects the two parent tips via two independent walks.
    ///
    /// # Errors
    ///
    /// Propagates tangle errors (cannot happen for well-formed tangles).
    pub fn select_tips<T: TangleRead<ModelPayload>>(
        &mut self,
        tangle: &T,
        data: &ClientDataset,
        cfg: &DagConfig,
    ) -> Result<((TxId, TxId), usize, usize), CoreError> {
        let (tip1, steps1, eval1) = self.walk_once(tangle, data, cfg)?;
        let (tip2, steps2, eval2) = self.walk_once(tangle, data, cfg)?;
        Ok(((tip1, tip2), steps1 + steps2, eval1 + eval2))
    }

    /// Computes the client's current reference (consensus) model: the
    /// average of the two walk-selected tips (§4.1). Returns the parameters
    /// and the tips.
    ///
    /// # Errors
    ///
    /// Propagates tangle errors.
    pub fn reference_model<T: TangleRead<ModelPayload>>(
        &mut self,
        tangle: &T,
        data: &ClientDataset,
        cfg: &DagConfig,
    ) -> Result<(Vec<f32>, (TxId, TxId)), CoreError> {
        let ((tip1, tip2), _, _) = self.select_tips(tangle, data, cfg)?;
        let p1 = tangle.payload_of(tip1)?.share();
        let p2 = tangle.payload_of(tip2)?.share();
        Ok((average_parameters(&[&p1, &p2]), (tip1, tip2)))
    }

    /// Evaluates an arbitrary parameter vector on the given data using the
    /// client's scratch model.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter count or data shape mismatches.
    pub fn evaluate_with(
        &mut self,
        params: &[f32],
        x: &Matrix,
        y: &[usize],
    ) -> Result<Evaluation, CoreError> {
        self.evaluator.evaluate_params(params, x, y)
    }

    /// Predicts classes for `x` using an arbitrary parameter vector loaded
    /// into the client's scratch model.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter count or data shape mismatches.
    pub fn predict_with(&mut self, params: &[f32], x: &Matrix) -> Result<Vec<usize>, CoreError> {
        self.evaluator.predict_params(params, x)
    }

    /// Runs the full four-step loop of Figure 1 against a tangle snapshot:
    /// biased walks → average → local training → publish decision.
    ///
    /// The returned [`TrainOutcome::published`] parameters must be attached
    /// to the tangle by the caller; splitting selection/training (reads)
    /// from publication (writes) lets all active clients of a round work on
    /// the same snapshot, like the paper's discrete-round simulation.
    ///
    /// # Errors
    ///
    /// Returns an error if the model architecture does not match the
    /// tangle's payloads or the dataset shape.
    pub fn train_round<T: TangleRead<ModelPayload>>(
        &mut self,
        tangle: &T,
        data: &ClientDataset,
        cfg: &DagConfig,
    ) -> Result<TrainOutcome, CoreError> {
        let counters_start = self.evaluator.counters();
        // Step 1: biased random walks select two tips.
        let walk_started = Instant::now();
        let ((tip1, tip2), walk_steps, candidates_evaluated) =
            self.select_tips(tangle, data, cfg)?;
        let walk_duration = walk_started.elapsed();
        // Step 2: average the two models. The default publish gate
        // compares against the *best* approved parent (the client's
        // current consensus view): this keeps a client from publishing a
        // model that only improved relative to a bad average — e.g. one
        // contaminated by a random-weight attacker (§4.4).
        let p1 = tangle.payload_of(tip1)?.share();
        let p2 = tangle.payload_of(tip2)?.share();
        // `score` maps malformed payloads to accuracy 0.0 (an
        // unattractive walk target), so guard the averaging explicitly:
        // mismatched parent lengths must surface as an error, not as an
        // `average_parameters` panic.
        if p1.len() != p2.len() {
            return Err(CoreError::Config(format!(
                "selected tips carry incompatible models ({} vs {} parameters)",
                p1.len(),
                p2.len()
            )));
        }
        let mut consensus_accuracy = 0.0f32;
        if cfg.publish_gate == PublishGate::BestParent {
            for tip in [tip1, tip2] {
                let acc = self
                    .evaluator
                    .score(tangle, tip, data.test_x(), data.test_y());
                consensus_accuracy = consensus_accuracy.max(acc);
            }
        }
        let averaged = average_parameters(&[&p1, &p2]);
        let reference = self
            .evaluator
            .evaluate_params(&averaged, data.test_x(), data.test_y())?;
        // Step 3: train on local data (fixed batch budget, Table 1);
        // optionally with frozen leading layers (partial-layer
        // personalisation). Parameters are already loaded from the
        // reference evaluation above.
        let mut opt = SgdConfig::new(cfg.learning_rate);
        if cfg.frozen_prefix > 0 {
            opt = opt.with_frozen_prefix(cfg.frozen_prefix);
        }
        let (model, scratch) = self.evaluator.model_and_scratch();
        for _ in 0..cfg.local_epochs {
            for (x, y) in data.train_batches(cfg.batch_size, cfg.local_batches, &mut self.rng) {
                model.train_batch(&x, &y, &opt)?;
            }
        }
        let trained = model.evaluate_with_scratch(data.test_x(), data.test_y(), scratch)?;
        // Step 4: publish only if training improved on the consensus,
        // with ties broken by loss against the averaged reference so that
        // early chance-level rounds can still make progress.
        let improved = match cfg.publish_gate {
            PublishGate::BestParent => {
                let gate = consensus_accuracy.max(reference.accuracy);
                trained.accuracy > gate
                    || (trained.accuracy == gate && trained.loss < reference.loss)
            }
            PublishGate::AveragedReference => {
                trained.accuracy > reference.accuracy
                    || (trained.accuracy == reference.accuracy && trained.loss < reference.loss)
            }
            PublishGate::Always => true,
        };
        let published = improved.then(|| self.evaluator.model().parameters());
        let counters = self.evaluator.counters().since(counters_start);
        Ok(TrainOutcome {
            client: self.id,
            parents: (tip1, tip2),
            reference,
            trained,
            published,
            walk_duration,
            walk_steps,
            candidates_evaluated,
            fresh_evaluations: counters.fresh,
            cached_evaluations: counters.cached,
        })
    }
}

impl std::fmt::Debug for DagClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DagClient")
            .field("id", &self.id)
            .field("evaluator", &self.evaluator)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelTangle;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Relu, Sequential};
    use dagfl_tangle::Tangle;

    fn small_dataset() -> dagfl_datasets::FederatedDataset {
        fmnist_clustered(&FmnistConfig {
            num_clients: 3,
            samples_per_client: 60,
            ..FmnistConfig::default()
        })
    }

    fn make_model(seed: u64, features: usize) -> Box<dyn Model> {
        let mut rng = StdRng::seed_from_u64(seed);
        Box::new(Sequential::new(vec![
            Box::new(Dense::new(&mut rng, features, 16)),
            Box::new(Relu::new()),
            Box::new(Dense::new(&mut rng, 16, 10)),
        ]))
    }

    fn config() -> DagConfig {
        DagConfig {
            rounds: 1,
            clients_per_round: 1,
            local_batches: 5,
            ..DagConfig::default()
        }
    }

    #[test]
    fn train_round_from_genesis_publishes_improvement() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let genesis = ModelPayload::new(model.parameters());
        let tangle: ModelTangle = Tangle::new(genesis);
        let mut client = DagClient::new(0, model, 7);
        let outcome = client
            .train_round(&tangle, &ds.clients()[0], &config())
            .unwrap();
        assert_eq!(outcome.client, 0);
        // Both walks start and end at the genesis.
        assert_eq!(outcome.parents.0, tangle.genesis());
        assert_eq!(outcome.parents.1, tangle.genesis());
        // Training from random init on separable data must improve.
        assert!(outcome.published.is_some(), "expected publication");
        assert!(outcome.trained.accuracy >= outcome.reference.accuracy);
    }

    #[test]
    fn caches_accumulate_and_clear() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let genesis_params = model.parameters();
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(genesis_params.clone()));
        let g = tangle.genesis();
        // Two tips for the walk to evaluate.
        tangle
            .attach(ModelPayload::new(genesis_params.clone()), &[g])
            .unwrap();
        tangle
            .attach(ModelPayload::new(genesis_params), &[g])
            .unwrap();
        let mut client = DagClient::new(1, model, 7);
        client
            .train_round(&tangle, &ds.clients()[1], &config())
            .unwrap();
        assert!(
            client.cache_len() >= 2,
            "walk should have cached evaluations"
        );
        client.clear_cache();
        assert_eq!(client.cache_len(), 0);
    }

    #[test]
    fn random_selector_evaluates_no_models() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let genesis_params = model.parameters();
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(genesis_params.clone()));
        let g = tangle.genesis();
        tangle
            .attach(ModelPayload::new(genesis_params), &[g])
            .unwrap();
        let mut client = DagClient::new(2, model, 7);
        let cfg = config().with_tip_selector(TipSelector::Random);
        let outcome = client.train_round(&tangle, &ds.clients()[2], &cfg).unwrap();
        // The walk itself evaluates nothing with the random selector; only
        // the publish gate inspects the (at most two) selected parents.
        assert_eq!(outcome.candidates_evaluated, 0);
        assert!(client.cache_len() <= 2);
    }

    #[test]
    fn incompatible_parent_models_error_instead_of_panicking() {
        // A tangle whose only two tips carry different parameter counts:
        // both walks are forced onto mismatched parents, which must
        // surface as an error (previously the BestParent gate caught it;
        // the evaluator's score-to-zero contract must not turn it into
        // an `average_parameters` panic).
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let n = model.num_parameters();
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(vec![0.0; n]));
        let g = tangle.genesis();
        tangle
            .attach(ModelPayload::new(vec![0.0; n]), &[g])
            .unwrap();
        tangle
            .attach(ModelPayload::new(vec![1.0; 3]), &[g])
            .unwrap();
        let mut client = DagClient::new(0, model, 7);
        let mut saw_mismatch_error = false;
        for _ in 0..30 {
            match client.train_round(&tangle, &ds.clients()[0], &config()) {
                // Rounds where both walks land on the same tip either
                // succeed (valid payload) or fail with a parameter-count
                // error (malformed payload) — both acceptable here.
                Ok(_) => {}
                Err(e) if e.to_string().contains("incompatible") => saw_mismatch_error = true,
                Err(e) => assert!(e.to_string().contains("parameter"), "{e}"),
            }
        }
        assert!(
            saw_mismatch_error,
            "walks never selected the mismatched tip pair"
        );
    }

    #[test]
    fn cleared_cache_forces_fresh_reevaluation() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let genesis_params = model.parameters();
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(genesis_params.clone()));
        let g = tangle.genesis();
        tangle
            .attach(ModelPayload::new(genesis_params.clone()), &[g])
            .unwrap();
        tangle
            .attach(ModelPayload::new(genesis_params), &[g])
            .unwrap();
        let mut client = DagClient::new(1, model, 7);
        // First round fills the cache with fresh evaluations.
        let first = client
            .train_round(&tangle, &ds.clients()[1], &config())
            .unwrap();
        assert!(first.fresh_evaluations > 0);
        // Second round against the unchanged tangle: walks are answered
        // from the cache.
        let second = client
            .train_round(&tangle, &ds.clients()[1], &config())
            .unwrap();
        assert_eq!(second.fresh_evaluations, 0, "unchanged data re-evaluated");
        assert!(second.cached_evaluations > 0);
        // Simulate a local-data change: the generation bump must force
        // fresh evaluations of the very same transactions.
        client.clear_cache();
        let third = client
            .train_round(&tangle, &ds.clients()[1], &config())
            .unwrap();
        assert!(
            third.fresh_evaluations >= first.fresh_evaluations.min(2),
            "generation bump must force re-evaluation, got {third:?}"
        );
    }

    #[test]
    fn reference_model_averages_tips() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let n = model.num_parameters();
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(vec![0.0; n]));
        let g = tangle.genesis();
        // A single tip with all-ones: reference = average(tip, tip) = ones
        // (both walks must end at the unique tip).
        tangle
            .attach(ModelPayload::new(vec![1.0; n]), &[g])
            .unwrap();
        let mut client = DagClient::new(0, model, 7);
        let (params, (t1, t2)) = client
            .reference_model(&tangle, &ds.clients()[0], &config())
            .unwrap();
        assert_eq!(t1, t2);
        assert!(params.iter().all(|&p| (p - 1.0).abs() < 1e-6));
    }

    #[test]
    fn walk_duration_is_measured() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let model = make_model(0, features);
        let genesis = ModelPayload::new(model.parameters());
        let tangle: ModelTangle = Tangle::new(genesis);
        let mut client = DagClient::new(0, model, 7);
        let outcome = client
            .train_round(&tangle, &ds.clients()[0], &config())
            .unwrap();
        // Positive but far below a second for a genesis-only tangle.
        assert!(outcome.walk_duration < Duration::from_secs(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_dataset();
        let features = ds.feature_len();
        let run = |seed: u64| {
            let model = make_model(0, features);
            let genesis = ModelPayload::new(model.parameters());
            let tangle: ModelTangle = Tangle::new(genesis);
            let mut client = DagClient::new(0, model, seed);
            client
                .train_round(&tangle, &ds.clients()[0], &config())
                .unwrap()
                .published
        };
        assert_eq!(run(7), run(7));
    }
}
