//! The networked peer session: one DAG-FL client speaking the real
//! [`TcpTransport`] instead of the simulator's loopback.
//!
//! A peer session is the event loop behind `dagfl peer`:
//!
//! 1. bind a gossip listener, register with the [`Tracker`] and dial
//!    every peer the tracker already knows;
//! 2. request a tangle snapshot from each of them (a late joiner is
//!    just a peer whose snapshots are non-trivial);
//! 3. repeatedly train on the local shard against the local
//!    [`Replica`], publish improved models as gossip, and apply
//!    whatever arrives;
//! 4. after the last local publication, announce `Done` and linger —
//!    still serving snapshots and applying gossip — until every peer
//!    of the session has announced `Done` and the link has settled.
//!
//! Every peer prints the same order-independent digest of its replica
//! at exit, so a harness (the CI `network-smoke` job) can assert that
//! the session converged to one transaction set.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_datasets::FederatedDataset;

use crate::wire::WireMessage;
use crate::{
    have_set, tracker_join, tracker_leave, ControlEvent, CoreError, DagClient, DagConfig,
    GossipMessage, ModelFactory, ModelPayload, Replica, TcpTransport, Transport, TxMessage,
    WireError,
};

/// Configuration of one networked peer session.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// This peer's client id (also selects its dataset shard).
    pub client: u32,
    /// Total peers expected in the session (the session ends when this
    /// many distinct clients have announced `Done`).
    pub peers: usize,
    /// Gossip listen address (use port 0 for an ephemeral port).
    pub listen: String,
    /// Tracker address to register with.
    pub tracker: String,
    /// Training activations to run before announcing `Done`.
    pub activations: usize,
    /// Wall-clock pause between consecutive activations.
    pub interarrival: Duration,
    /// Hyperparameters and tip selection (shared by all peers; the
    /// seed also derives the shared genesis model).
    pub dag: DagConfig,
    /// How long the session must stay quiet (no new gossip) after
    /// everyone is done before the peer exits.
    pub settle: Duration,
    /// Abort the session with an error after this much wall-clock time
    /// (a crashed peer would otherwise hang everyone forever).
    pub timeout: Duration,
}

impl Default for PeerConfig {
    fn default() -> Self {
        Self {
            client: 0,
            peers: 1,
            listen: "127.0.0.1:0".to_string(),
            tracker: "127.0.0.1:7878".to_string(),
            activations: 4,
            interarrival: Duration::from_millis(50),
            dag: DagConfig::default(),
            settle: Duration::from_millis(300),
            timeout: Duration::from_secs(120),
        }
    }
}

/// What one peer session observed, for convergence checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerReport {
    /// This peer's client id.
    pub client: u32,
    /// Training activations completed.
    pub activations: usize,
    /// Transactions this peer published.
    pub published: usize,
    /// Transactions received from the network (gossip + snapshots).
    pub received: usize,
    /// Transactions in the final replica, including the genesis.
    pub transactions: usize,
    /// Order-independent digest of the final replica; equal digests
    /// mean equal transaction sets.
    pub digest: u64,
    /// Distinct clients seen to announce `Done` (including this one).
    pub peers_done: usize,
}

/// Network ids must be unique without coordination, so each peer owns
/// a disjoint range: the client id in the high bits, a local sequence
/// number in the low bits. (The loopback transport instead uses dense
/// global-tangle indices; both leave 0 for the genesis.)
fn net_id(client: u32, seq: u64) -> u64 {
    ((u64::from(client) + 1) << 40) | seq
}

/// Runs one peer session to completion (see the module docs for the
/// protocol). The dataset is the *whole* federated dataset — the peer
/// trains on shard `config.client % dataset.num_clients()` — and the
/// factory plus `config.dag.seed` reproduce the same genesis model on
/// every peer, which is what makes the replicas compatible.
///
/// # Errors
///
/// Returns [`CoreError::Network`] for socket/tracker failures,
/// [`CoreError::Config`] on timeout, and propagates training errors.
pub fn run_peer(
    config: &PeerConfig,
    dataset: &FederatedDataset,
    factory: &ModelFactory,
) -> Result<PeerReport, CoreError> {
    if dataset.num_clients() == 0 {
        return Err(CoreError::invalid_field(
            "dataset.num_clients",
            0,
            "dataset has no clients",
        ));
    }
    config.dag.validate()?;
    // Reproduce the simulator's model derivation: the first factory
    // call on the session seed is the shared genesis, the (i+1)-th is
    // client i's working model.
    let mut rng = StdRng::seed_from_u64(config.dag.seed ^ 0xA57C);
    let genesis = ModelPayload::new(factory(&mut rng).parameters());
    let mut model = factory(&mut rng);
    for _ in 0..config.client {
        model = factory(&mut rng);
    }
    let shard = &dataset.clients()[config.client as usize % dataset.num_clients()];
    let mut client = DagClient::new(
        config.client,
        model,
        config.dag.seed.wrapping_add(u64::from(config.client)),
    );
    let mut replica = Replica::new(genesis);

    let mut transport =
        TcpTransport::bind(&config.listen, config.client).map_err(WireError::from)?;
    let listen_addr = transport.local_addr().to_string();
    let known = tracker_join(&config.tracker, config.client, &listen_addr)?;
    // Dial everyone already registered and ask each for a snapshot: a
    // late joiner catches up on everything published before it
    // existed; publications after the dial arrive as live gossip.
    for peer in &known {
        match transport.connect(&peer.addr) {
            Ok(conn) => {
                let _ = transport.send_to_conn(
                    conn,
                    &WireMessage::SnapshotRequest {
                        have: replica.network_ids().to_vec(),
                    },
                );
            }
            Err(_) => {
                // A stale registration (the peer died); the Done
                // accounting below still needs its announcement, so a
                // vanished peer eventually times the session out —
                // which is the honest outcome.
            }
        }
    }

    let started = Instant::now();
    let mut done: HashSet<u32> = HashSet::new();
    let mut activations = 0usize;
    let mut published = 0usize;
    let mut received = 0usize;
    let mut seq = 0u64;
    let mut next_activation = Instant::now();
    let mut settle_until: Option<Instant> = None;
    loop {
        if started.elapsed() > config.timeout {
            let _ = tracker_leave(&config.tracker, config.client);
            return Err(CoreError::Config(format!(
                "peer {} timed out after {:?} ({}/{} peers done)",
                config.client,
                config.timeout,
                done.len(),
                config.peers
            )));
        }
        let mut activity = false;
        for event in transport.take_control() {
            match event {
                ControlEvent::Hello { conn, .. } => {
                    activity = true;
                    // A later joiner missed our earlier Done broadcast;
                    // re-announcing is idempotent (Done is a set).
                    if done.contains(&config.client) {
                        let _ = transport.send_to_conn(
                            conn,
                            &WireMessage::Done {
                                client: config.client,
                            },
                        );
                    }
                }
                ControlEvent::SnapshotRequest { conn, have } => {
                    activity = true;
                    let transactions = replica.snapshot_messages(&have_set(&have));
                    let _ = transport.send_to_conn(conn, &WireMessage::Snapshot { transactions });
                }
                ControlEvent::Done { client } => {
                    activity = true;
                    done.insert(client);
                }
                ControlEvent::Disconnected { .. } => {}
            }
        }
        let incoming = transport.receive(0, 0.0);
        if !incoming.is_empty() {
            activity = true;
            received += incoming
                .iter()
                .map(|e| match &e.message {
                    GossipMessage::Transaction(_) => 1,
                    GossipMessage::Snapshot(batch) => batch.len(),
                })
                .sum::<usize>();
            replica.apply(incoming);
        }
        if activations < config.activations && Instant::now() >= next_activation {
            activity = true;
            next_activation = Instant::now() + config.interarrival;
            let outcome = client.train_round(replica.tangle(), shard, &config.dag)?;
            activations += 1;
            if let Some(params) = outcome.published {
                let net_parents = vec![
                    replica
                        .network_id(outcome.parents.0)
                        .expect("selected tip is in the replica"),
                    replica
                        .network_id(outcome.parents.1)
                        .expect("selected tip is in the replica"),
                ];
                seq += 1;
                let message = TxMessage {
                    id: net_id(config.client, seq),
                    parents: net_parents,
                    params: Arc::new(params),
                    issuer: Some(config.client),
                    round: activations as u32,
                };
                replica.insert(&message)?;
                published += 1;
                let mut unused = StdRng::seed_from_u64(0);
                transport.broadcast(0, 0.0, GossipMessage::Transaction(message), &mut unused)?;
            }
            if activations == config.activations {
                transport.broadcast_wire(&WireMessage::Done {
                    client: config.client,
                });
                done.insert(config.client);
            }
        }
        let finished = activations >= config.activations
            && done.len() >= config.peers
            && replica.buffered() == 0;
        if finished {
            // Stay up through a quiet period: peers may still be
            // fetching our transactions, and stragglers may still be
            // in flight to us. Any activity re-arms the timer.
            match settle_until {
                Some(at) if !activity && Instant::now() >= at => break,
                Some(_) if activity => {
                    settle_until = Some(Instant::now() + config.settle);
                }
                Some(_) => {}
                None => settle_until = Some(Instant::now() + config.settle),
            }
        } else {
            settle_until = None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = tracker_leave(&config.tracker, config.client);
    Ok(PeerReport {
        client: config.client,
        activations,
        published,
        received,
        transactions: replica.tangle().len(),
        digest: replica.digest(),
        peers_done: done.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracker;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::thread;

    fn session_task(num_clients: usize) -> (FederatedDataset, ModelFactory) {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients,
            samples_per_client: 30,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 8)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 8, 10)),
            ])) as Box<dyn Model>
        });
        (dataset, factory)
    }

    fn peer_config(client: u32, peers: usize, tracker: &str) -> PeerConfig {
        PeerConfig {
            client,
            peers,
            listen: "127.0.0.1:0".to_string(),
            tracker: tracker.to_string(),
            activations: 3,
            interarrival: Duration::from_millis(10),
            dag: DagConfig {
                local_batches: 2,
                ..DagConfig::default()
            },
            settle: Duration::from_millis(200),
            timeout: Duration::from_secs(60),
        }
    }

    /// Three peers (one joining late, synced via snapshot) converge to
    /// the same transaction set — the in-process version of the CI
    /// `network-smoke` job.
    #[test]
    fn three_peers_converge_including_a_late_joiner() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let tracker_addr = tracker.local_addr().unwrap().to_string();
        let tracker_handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(3)).unwrap())
        };
        let (dataset, factory) = session_task(3);
        let mut handles = Vec::new();
        for client in 0..3u32 {
            let config = peer_config(client, 3, &tracker_addr);
            let dataset = dataset.clone();
            let factory = Arc::clone(&factory);
            handles.push(thread::spawn(move || {
                if client == 2 {
                    // The late joiner: by now the others have likely
                    // published; it must catch up via snapshot sync.
                    thread::sleep(Duration::from_millis(150));
                }
                run_peer(&config, &dataset, &factory).unwrap()
            }));
        }
        let reports: Vec<PeerReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let summary = tracker_handle.join().unwrap();
        assert_eq!(summary.joined, 3);
        assert_eq!(summary.left, 3);
        let total_published: usize = reports.iter().map(|r| r.published).sum();
        assert!(total_published > 0, "nobody published anything");
        for r in &reports {
            assert_eq!(r.peers_done, 3, "peer {} missed a Done", r.client);
            assert_eq!(
                r.transactions,
                total_published + 1,
                "peer {} did not converge",
                r.client
            );
        }
        let digest = reports[0].digest;
        for r in &reports[1..] {
            assert_eq!(r.digest, digest, "peer {} diverged", r.client);
        }
    }

    #[test]
    fn net_ids_are_disjoint_across_clients_and_never_genesis() {
        assert_ne!(net_id(0, 1), crate::GENESIS_NET_ID);
        assert_ne!(net_id(0, 1), net_id(1, 1));
        // 2^40 sequence numbers per client before ranges could touch.
        assert!(net_id(0, (1 << 40) - 1) < net_id(1, 0));
    }

    #[test]
    fn peer_without_tracker_errors_instead_of_hanging() {
        let (dataset, factory) = session_task(3);
        // Nothing listens on this port (bound but never accepted-from
        // would hang; a closed port errors immediately).
        let config = PeerConfig {
            tracker: "127.0.0.1:1".to_string(),
            ..peer_config(0, 2, "127.0.0.1:1")
        };
        let err = run_peer(&config, &dataset, &factory).unwrap_err();
        assert!(matches!(err, CoreError::Network(_)), "{err}");
    }
}
