//! The networked peer session: one DAG-FL client speaking the real
//! [`TcpTransport`] instead of the simulator's loopback.
//!
//! A peer session is the event loop behind `dagfl peer`:
//!
//! 1. bind a gossip listener, register with the [`Tracker`] and dial
//!    every peer the tracker already knows;
//! 2. request a tangle snapshot from each of them (a late joiner is
//!    just a peer whose snapshots are non-trivial);
//! 3. repeatedly train on the local shard against the local
//!    [`Replica`], publish improved models as gossip, and apply
//!    whatever arrives;
//! 4. after the last local publication, announce `Done` and linger —
//!    still serving snapshots and applying gossip — until every peer
//!    of the session has announced `Done` and the link has settled.
//!
//! Every peer prints the same order-independent digest of its replica
//! at exit, so a harness (the CI `network-smoke` job) can assert that
//! the session converged to one transaction set.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_datasets::FederatedDataset;

use crate::wire::WireMessage;
use crate::{
    derive_seed, have_set, tracker_join, tracker_leave, ControlEvent, CoreError, DagClient,
    DagConfig, GossipMessage, ModelFactory, ModelPayload, Replica, TcpTransport, Transport,
    TxMessage, WireError,
};

/// RNG stream id of the peer's gossip fan-out sampling (see
/// [`derive_seed`]); kept separate from training and fault streams.
const GOSSIP_STREAM: u64 = 0x605_51b;

/// First retry delay after a dropped connection; doubles per failed
/// attempt up to [`MAX_BACKOFF`].
const BASE_BACKOFF: Duration = Duration::from_millis(100);

/// Ceiling of the reconnect backoff.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Configuration of one networked peer session.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// This peer's client id (also selects its dataset shard).
    pub client: u32,
    /// Total peers expected in the session (the session ends when this
    /// many distinct clients have announced `Done`).
    pub peers: usize,
    /// Gossip listen address (use port 0 for an ephemeral port).
    pub listen: String,
    /// Tracker address to register with.
    pub tracker: String,
    /// Training activations to run before announcing `Done`.
    pub activations: usize,
    /// Wall-clock pause between consecutive activations.
    pub interarrival: Duration,
    /// Hyperparameters and tip selection (shared by all peers; the
    /// seed also derives the shared genesis model).
    pub dag: DagConfig,
    /// How long the session must stay quiet (no new gossip) after
    /// everyone is done before the peer exits.
    pub settle: Duration,
    /// Abort the session with an error after this much wall-clock time
    /// (a crashed peer would otherwise hang everyone forever).
    pub timeout: Duration,
    /// Re-dial dropped connections with exponential backoff, looking
    /// the peer's current address up at the tracker each attempt (so a
    /// peer that restarted on a new port is found) and requesting a
    /// snapshot delta to catch up on anything missed while the link
    /// was down.
    pub reconnect: bool,
    /// Gossip each publication to this many randomly sampled live
    /// connections instead of all of them (`0` = full broadcast).
    /// `Done` announcements and snapshot replies always go to
    /// everyone.
    pub fanout: usize,
}

impl Default for PeerConfig {
    fn default() -> Self {
        Self {
            client: 0,
            peers: 1,
            listen: "127.0.0.1:0".to_string(),
            tracker: "127.0.0.1:7878".to_string(),
            activations: 4,
            interarrival: Duration::from_millis(50),
            dag: DagConfig::default(),
            settle: Duration::from_millis(300),
            timeout: Duration::from_secs(120),
            reconnect: false,
            fanout: 0,
        }
    }
}

/// What one peer session observed, for convergence checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerReport {
    /// This peer's client id.
    pub client: u32,
    /// Training activations completed.
    pub activations: usize,
    /// Transactions this peer published.
    pub published: usize,
    /// Transactions received from the network (gossip + snapshots).
    pub received: usize,
    /// Transactions in the final replica, including the genesis.
    pub transactions: usize,
    /// Order-independent digest of the final replica; equal digests
    /// mean equal transaction sets.
    pub digest: u64,
    /// Distinct clients seen to announce `Done` (including this one).
    pub peers_done: usize,
    /// Envelopes the transport handed to this peer.
    pub delivered: usize,
    /// Sends that failed on a dead connection.
    pub dropped: usize,
    /// Connections successfully re-established after a drop.
    pub reconnects: usize,
}

/// Network ids must be unique without coordination, so each peer owns
/// a disjoint range: the client id in the high bits, a local sequence
/// number in the low bits. (The loopback transport instead uses dense
/// global-tangle indices; both leave 0 for the genesis.)
fn net_id(client: u32, seq: u64) -> u64 {
    ((u64::from(client) + 1) << 40) | seq
}

/// The next unused sequence number in this client's id range, derived
/// from the replica rather than a counter: a peer that crashed and
/// rejoined recovers its pre-crash publications through the snapshot
/// delta, and must resume *after* them — reusing a sequence number
/// would collide with a different transaction of the same id and
/// silently diverge the session.
fn next_own_seq(replica: &Replica, client: u32) -> u64 {
    let range = u64::from(client) + 1;
    replica
        .network_ids()
        .iter()
        .filter(|&&id| id >> 40 == range)
        .map(|&id| id & ((1u64 << 40) - 1))
        .max()
        .map_or(1, |seq| seq + 1)
}

/// Picks the gossip receivers for one publication: all live
/// connections when `fanout` is 0 (or not smaller than the live
/// count), otherwise a partial Fisher–Yates sample of `fanout` of
/// them from the peer's dedicated gossip RNG stream.
fn gossip_targets(mut live: Vec<usize>, fanout: usize, rng: &mut StdRng) -> Vec<usize> {
    if fanout == 0 || fanout >= live.len() {
        return live;
    }
    for i in 0..fanout {
        let j = rng.gen_range(i..live.len());
        live.swap(i, j);
    }
    live.truncate(fanout);
    live
}

/// Per-peer reconnect bookkeeping: when to try next, and how long to
/// wait after another failure.
struct Backoff {
    next: Instant,
    delay: Duration,
}

impl Backoff {
    fn new() -> Self {
        Self {
            next: Instant::now() + BASE_BACKOFF,
            delay: BASE_BACKOFF,
        }
    }

    fn failed(&mut self) {
        self.delay = (self.delay * 2).min(MAX_BACKOFF);
        self.next = Instant::now() + self.delay;
    }
}

/// One reconnect attempt: look the target up at the tracker (its
/// address may have changed across a restart; re-joining is idempotent
/// for us), dial it, and request the snapshot delta of everything we
/// missed while the link was down.
fn try_reconnect(
    transport: &mut TcpTransport,
    config: &PeerConfig,
    listen_addr: &str,
    target: u32,
    replica: &Replica,
) -> Result<(), CoreError> {
    let known = tracker_join(&config.tracker, config.client, listen_addr)?;
    let peer = known
        .iter()
        .find(|p| p.client == target)
        .ok_or_else(|| WireError::Io(format!("peer {target} is not registered")))?;
    let conn = transport.connect(&peer.addr).map_err(WireError::from)?;
    transport
        .send_to_conn(
            conn,
            &WireMessage::SnapshotRequest {
                have: replica.network_ids().to_vec(),
            },
        )
        .map_err(CoreError::from)?;
    Ok(())
}

/// Runs one peer session to completion (see the module docs for the
/// protocol). The dataset is the *whole* federated dataset — the peer
/// trains on shard `config.client % dataset.num_clients()` — and the
/// factory plus `config.dag.seed` reproduce the same genesis model on
/// every peer, which is what makes the replicas compatible.
///
/// # Errors
///
/// Returns [`CoreError::Network`] for socket/tracker failures,
/// [`CoreError::Config`] on timeout, and propagates training errors.
pub fn run_peer(
    config: &PeerConfig,
    dataset: &FederatedDataset,
    factory: &ModelFactory,
) -> Result<PeerReport, CoreError> {
    if dataset.num_clients() == 0 {
        return Err(CoreError::invalid_field(
            "dataset.num_clients",
            0,
            "dataset has no clients",
        ));
    }
    config.dag.validate()?;
    // Reproduce the simulator's model derivation: the first factory
    // call on the session seed is the shared genesis, the (i+1)-th is
    // client i's working model.
    let mut rng = StdRng::seed_from_u64(config.dag.seed ^ 0xA57C);
    let genesis = ModelPayload::new(factory(&mut rng).parameters());
    let mut model = factory(&mut rng);
    for _ in 0..config.client {
        model = factory(&mut rng);
    }
    let shard = &dataset.clients()[config.client as usize % dataset.num_clients()];
    let mut client = DagClient::new(
        config.client,
        model,
        config.dag.seed.wrapping_add(u64::from(config.client)),
    );
    let mut replica = Replica::new(genesis);

    let mut transport =
        TcpTransport::bind(&config.listen, config.client).map_err(WireError::from)?;
    let listen_addr = transport.local_addr().to_string();
    let known = tracker_join(&config.tracker, config.client, &listen_addr)?;
    // Dial everyone already registered and ask each for a snapshot: a
    // late joiner catches up on everything published before it
    // existed; publications after the dial arrive as live gossip.
    for peer in &known {
        match transport.connect(&peer.addr) {
            Ok(conn) => {
                let _ = transport.send_to_conn(
                    conn,
                    &WireMessage::SnapshotRequest {
                        have: replica.network_ids().to_vec(),
                    },
                );
            }
            Err(_) => {
                // A stale registration (the peer died); the Done
                // accounting below still needs its announcement, so a
                // vanished peer eventually times the session out —
                // which is the honest outcome.
            }
        }
    }

    let started = Instant::now();
    let mut done: HashSet<u32> = HashSet::new();
    let mut activations = 0usize;
    let mut published = 0usize;
    let mut received = 0usize;
    let mut gossip_rng = StdRng::seed_from_u64(derive_seed(
        config.dag.seed ^ u64::from(config.client),
        GOSSIP_STREAM,
    ));
    let mut reconnects: HashMap<u32, Backoff> = HashMap::new();
    let mut next_activation = Instant::now();
    let mut settle_until: Option<Instant> = None;
    loop {
        if started.elapsed() > config.timeout {
            let _ = tracker_leave(&config.tracker, config.client);
            return Err(CoreError::Config(format!(
                "peer {} timed out after {:?} ({}/{} peers done)",
                config.client,
                config.timeout,
                done.len(),
                config.peers
            )));
        }
        let mut activity = false;
        for event in transport.take_control() {
            match event {
                ControlEvent::Hello { conn, client } => {
                    activity = true;
                    // The peer found its own way back; stop redialing.
                    reconnects.remove(&client);
                    // A later joiner missed our earlier Done broadcast;
                    // re-announcing is idempotent (Done is a set).
                    if done.contains(&config.client) {
                        let _ = transport.send_to_conn(
                            conn,
                            &WireMessage::Done {
                                client: config.client,
                            },
                        );
                    }
                }
                ControlEvent::SnapshotRequest { conn, have } => {
                    activity = true;
                    let transactions = replica.snapshot_messages(&have_set(&have));
                    let _ = transport.send_to_conn(conn, &WireMessage::Snapshot { transactions });
                }
                ControlEvent::Done { client } => {
                    activity = true;
                    done.insert(client);
                }
                ControlEvent::Disconnected { client, .. } => {
                    if config.reconnect {
                        if let Some(client) = client {
                            reconnects.entry(client).or_insert_with(Backoff::new);
                        }
                    }
                }
            }
        }
        // Reconnect-with-backoff: a failed attempt is not activity (it
        // must not hold the settle grace open forever against a peer
        // that is gone for good), a successful one is.
        let due: Vec<u32> = reconnects
            .iter()
            .filter(|(_, b)| Instant::now() >= b.next)
            .map(|(&client, _)| client)
            .collect();
        for target in due {
            match try_reconnect(&mut transport, config, &listen_addr, target, &replica) {
                Ok(()) => {
                    reconnects.remove(&target);
                    transport.note_reconnect();
                    activity = true;
                }
                Err(_) => {
                    if let Some(b) = reconnects.get_mut(&target) {
                        b.failed();
                    }
                }
            }
        }
        let incoming = transport.receive(0, 0.0);
        if !incoming.is_empty() {
            activity = true;
            received += incoming
                .iter()
                .map(|e| match &e.message {
                    GossipMessage::Transaction(_) => 1,
                    GossipMessage::Snapshot(batch) => batch.len(),
                })
                .sum::<usize>();
            replica.apply(incoming);
        }
        if activations < config.activations && Instant::now() >= next_activation {
            activity = true;
            next_activation = Instant::now() + config.interarrival;
            let outcome = client.train_round(replica.tangle(), shard, &config.dag)?;
            activations += 1;
            if let Some(params) = outcome.published {
                let net_parents = vec![
                    replica
                        .network_id(outcome.parents.0)
                        .expect("selected tip is in the replica"),
                    replica
                        .network_id(outcome.parents.1)
                        .expect("selected tip is in the replica"),
                ];
                let seq = next_own_seq(&replica, config.client);
                let message = TxMessage {
                    id: net_id(config.client, seq),
                    parents: net_parents,
                    params: Arc::new(params),
                    issuer: Some(config.client),
                    round: activations as u32,
                };
                replica.insert(&message)?;
                published += 1;
                let wire = WireMessage::Transaction(message);
                let targets =
                    gossip_targets(transport.live_connections(), config.fanout, &mut gossip_rng);
                for conn in targets {
                    let _ = transport.send_to_conn(conn, &wire);
                }
            }
            if activations == config.activations {
                transport.broadcast_wire(&WireMessage::Done {
                    client: config.client,
                });
                done.insert(config.client);
            }
        }
        let finished = activations >= config.activations
            && done.len() >= config.peers
            && replica.buffered() == 0;
        if finished {
            // Stay up through a quiet period: peers may still be
            // fetching our transactions, and stragglers may still be
            // in flight to us. Any activity re-arms the timer.
            match settle_until {
                Some(at) if !activity && Instant::now() >= at => break,
                Some(_) if activity => {
                    settle_until = Some(Instant::now() + config.settle);
                }
                Some(_) => {}
                None => settle_until = Some(Instant::now() + config.settle),
            }
        } else {
            settle_until = None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = tracker_leave(&config.tracker, config.client);
    let stats = transport.stats();
    Ok(PeerReport {
        client: config.client,
        activations,
        published,
        received,
        transactions: replica.tangle().len(),
        digest: replica.digest(),
        peers_done: done.len(),
        delivered: stats.delivered,
        dropped: stats.dropped,
        reconnects: stats.reconnects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracker;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::thread;

    fn session_task(num_clients: usize) -> (FederatedDataset, ModelFactory) {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients,
            samples_per_client: 30,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 8)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 8, 10)),
            ])) as Box<dyn Model>
        });
        (dataset, factory)
    }

    fn peer_config(client: u32, peers: usize, tracker: &str) -> PeerConfig {
        PeerConfig {
            client,
            peers,
            listen: "127.0.0.1:0".to_string(),
            tracker: tracker.to_string(),
            activations: 3,
            interarrival: Duration::from_millis(10),
            dag: DagConfig {
                local_batches: 2,
                ..DagConfig::default()
            },
            settle: Duration::from_millis(200),
            timeout: Duration::from_secs(60),
            reconnect: false,
            fanout: 0,
        }
    }

    /// Three peers (one joining late, synced via snapshot) converge to
    /// the same transaction set — the in-process version of the CI
    /// `network-smoke` job.
    #[test]
    fn three_peers_converge_including_a_late_joiner() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let tracker_addr = tracker.local_addr().unwrap().to_string();
        let tracker_handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(3)).unwrap())
        };
        let (dataset, factory) = session_task(3);
        let mut handles = Vec::new();
        for client in 0..3u32 {
            let config = peer_config(client, 3, &tracker_addr);
            let dataset = dataset.clone();
            let factory = Arc::clone(&factory);
            handles.push(thread::spawn(move || {
                if client == 2 {
                    // The late joiner: by now the others have likely
                    // published; it must catch up via snapshot sync.
                    thread::sleep(Duration::from_millis(150));
                }
                run_peer(&config, &dataset, &factory).unwrap()
            }));
        }
        let reports: Vec<PeerReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let summary = tracker_handle.join().unwrap();
        assert_eq!(summary.joined, 3);
        assert_eq!(summary.left, 3);
        let total_published: usize = reports.iter().map(|r| r.published).sum();
        assert!(total_published > 0, "nobody published anything");
        for r in &reports {
            assert_eq!(r.peers_done, 3, "peer {} missed a Done", r.client);
            assert_eq!(
                r.transactions,
                total_published + 1,
                "peer {} did not converge",
                r.client
            );
        }
        let digest = reports[0].digest;
        for r in &reports[1..] {
            assert_eq!(r.digest, digest, "peer {} diverged", r.client);
        }
    }

    #[test]
    fn net_ids_are_disjoint_across_clients_and_never_genesis() {
        assert_ne!(net_id(0, 1), crate::GENESIS_NET_ID);
        assert_ne!(net_id(0, 1), net_id(1, 1));
        // 2^40 sequence numbers per client before ranges could touch.
        assert!(net_id(0, (1 << 40) - 1) < net_id(1, 0));
    }

    #[test]
    fn next_own_seq_resumes_after_recovered_publications() {
        let (dataset, factory) = session_task(3);
        let _ = dataset;
        let mut rng = StdRng::seed_from_u64(1);
        let genesis = ModelPayload::new(factory(&mut rng).parameters());
        let mut replica = Replica::new(genesis);
        assert_eq!(next_own_seq(&replica, 3), 1, "fresh replica starts at 1");
        // The replica holds this client's own pre-crash publications
        // (recovered via snapshot) plus another client's.
        for (client, seq) in [(3u32, 1u64), (3, 2), (5, 9)] {
            replica
                .insert(&TxMessage {
                    id: net_id(client, seq),
                    parents: vec![0],
                    params: Arc::new(vec![0.0]),
                    issuer: Some(client),
                    round: 0,
                })
                .unwrap();
        }
        assert_eq!(next_own_seq(&replica, 3), 3, "resumes after own max");
        assert_eq!(next_own_seq(&replica, 5), 10);
        assert_eq!(next_own_seq(&replica, 0), 1, "other ranges don't bleed");
    }

    #[test]
    fn gossip_targets_sample_exactly_fanout_connections() {
        let mut rng = StdRng::seed_from_u64(7);
        let live = vec![0, 1, 2, 3, 4];
        assert_eq!(gossip_targets(live.clone(), 0, &mut rng), live);
        assert_eq!(gossip_targets(live.clone(), 5, &mut rng), live);
        assert_eq!(gossip_targets(live.clone(), 99, &mut rng), live);
        let picked = gossip_targets(live.clone(), 2, &mut rng);
        assert_eq!(picked.len(), 2);
        let distinct: HashSet<usize> = picked.iter().copied().collect();
        assert_eq!(distinct.len(), 2, "no duplicate targets");
        assert!(picked.iter().all(|c| live.contains(c)));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut b = Backoff::new();
        assert_eq!(b.delay, BASE_BACKOFF);
        for _ in 0..12 {
            b.failed();
        }
        assert_eq!(b.delay, MAX_BACKOFF);
        assert!(b.next > Instant::now());
    }

    /// A one-peer session is its own Done quorum: it publishes, waits
    /// out the settle grace, and exits cleanly — the smallest exercise
    /// of the quorum/settle exit path.
    #[test]
    fn single_peer_session_satisfies_its_own_quorum() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let tracker_addr = tracker.local_addr().unwrap().to_string();
        let tracker_handle = {
            let mut tracker = tracker;
            thread::spawn(move || tracker.run(Some(1)).unwrap())
        };
        let (dataset, factory) = session_task(3);
        let config = PeerConfig {
            settle: Duration::from_millis(50),
            ..peer_config(0, 1, &tracker_addr)
        };
        let report = run_peer(&config, &dataset, &factory).unwrap();
        tracker_handle.join().unwrap();
        assert_eq!(report.peers_done, 1);
        assert_eq!(report.activations, config.activations);
        assert_eq!(report.received, 0, "nobody to gossip with");
        assert_eq!(report.reconnects, 0);
    }

    /// A session whose quorum never completes must exit through the
    /// timeout guard, not hang.
    #[test]
    fn missing_peer_times_the_session_out() {
        let tracker = Tracker::bind("127.0.0.1:0").unwrap();
        let tracker_addr = tracker.local_addr().unwrap().to_string();
        {
            let mut tracker = tracker;
            // Detached: the expectation never completes, the thread
            // dies with the test process.
            thread::spawn(move || {
                let _ = tracker.run(Some(99));
            });
        }
        let (dataset, factory) = session_task(3);
        let config = PeerConfig {
            timeout: Duration::from_millis(700),
            settle: Duration::from_millis(50),
            ..peer_config(0, 2, &tracker_addr)
        };
        let err = run_peer(&config, &dataset, &factory).unwrap_err();
        assert!(
            matches!(err, CoreError::Config(ref msg) if msg.contains("timed out")),
            "{err}"
        );
    }

    #[test]
    fn peer_without_tracker_errors_instead_of_hanging() {
        let (dataset, factory) = session_task(3);
        // Nothing listens on this port (bound but never accepted-from
        // would hang; a closed port errors immediately).
        let config = PeerConfig {
            tracker: "127.0.0.1:1".to_string(),
            ..peer_config(0, 2, "127.0.0.1:1")
        };
        let err = run_peer(&config, &dataset, &factory).unwrap_err();
        assert!(matches!(err, CoreError::Network(_)), "{err}");
    }
}
