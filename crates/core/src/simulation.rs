//! The discrete-round simulation of the Specializing DAG (§5.3).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dagfl_datasets::FederatedDataset;
use dagfl_graphs::{louvain, misclassification_fraction, modularity, partition_count, Graph};
use dagfl_nn::Evaluation;
use dagfl_tangle::TxId;

use crate::{
    ClientGraphTracker, CoreError, DagClient, DagConfig, ModelFactory, ModelPayload, RoundMetrics,
    ShardedModelTangle, SpecializationMetrics, TrainOutcome,
};

/// A client's reference evaluation: `(client id, evaluation, selected tips)`.
pub type ReferenceEvaluation = (u32, Evaluation, (TxId, TxId));

/// A Specializing-DAG training simulation over a federated dataset.
///
/// Each round samples `clients_per_round` clients; every active client runs
/// the Figure 1 loop against the round-start snapshot of the tangle
/// (concurrently when [`DagConfig::parallel`] is set), and all resulting
/// publications are attached at the end of the round. The paper introduces
/// the same round structure purely to compare against centralized
/// approaches (§5.3.3) — the algorithm itself is asynchronous.
pub struct Simulation {
    pub(crate) config: DagConfig,
    pub(crate) dataset: FederatedDataset,
    pub(crate) tangle: ShardedModelTangle,
    pub(crate) clients: Vec<DagClient>,
    pub(crate) rng: StdRng,
    pub(crate) history: Vec<RoundMetrics>,
    pub(crate) round: usize,
    pub(crate) graph: ClientGraphTracker,
}

impl Simulation {
    /// Creates a simulation: the genesis transaction carries a freshly
    /// initialised model, and every client receives its own scratch model
    /// from `factory`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DagConfig::validate`] (call
    /// it first to get a `Result` instead) or `clients_per_round`
    /// exceeds the dataset's client count.
    pub fn new(config: DagConfig, dataset: FederatedDataset, factory: ModelFactory) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid simulation configuration: {e}");
        }
        assert!(
            config.clients_per_round > 0 && config.clients_per_round <= dataset.num_clients(),
            "clients_per_round ({}) must be in 1..={}",
            config.clients_per_round,
            dataset.num_clients()
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let genesis_model = factory(&mut rng);
        let tangle = ShardedModelTangle::new(ModelPayload::new(genesis_model.parameters()));
        let clients: Vec<DagClient> = (0..dataset.num_clients() as u32)
            .map(|id| DagClient::new(id, factory(&mut rng), config.seed.wrapping_add(id as u64)))
            .collect();
        let graph = ClientGraphTracker::new(dataset.cluster_labels());
        Self {
            config,
            dataset,
            tangle,
            clients,
            rng,
            history: Vec::new(),
            round: 0,
            graph,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &DagConfig {
        &self.config
    }

    /// The federated dataset being trained on.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// The shared tangle of model updates. Reads never take a global
    /// lock, so the borrow can be handed straight to analysis code or
    /// worker threads.
    pub fn tangle(&self) -> &ShardedModelTangle {
        &self.tangle
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Metrics of all completed rounds.
    pub fn history(&self) -> &[RoundMetrics] {
        &self.history
    }

    /// Mean post-training accuracy over the most recent `n` client
    /// evaluations (crossing round boundaries, newest first), the
    /// round-based counterpart of
    /// [`AsyncSimulation::recent_accuracy`](crate::AsyncSimulation::recent_accuracy).
    pub fn recent_accuracy(&self, n: usize) -> f32 {
        let recent: Vec<f32> = self
            .history
            .iter()
            .rev()
            .flat_map(|m| m.accuracies.iter().rev().copied())
            .take(n)
            .collect();
        if recent.is_empty() {
            return 0.0;
        }
        recent.iter().sum::<f32>() / recent.len() as f32
    }

    /// Invalidates every client's evaluation cache by bumping its cache
    /// generation (required after mutating the dataset, e.g. a poisoning
    /// attack). Stale entries can never be served afterwards — lookups
    /// check the generation stamp.
    pub fn clear_caches(&mut self) {
        for client in &mut self.clients {
            client.clear_cache();
        }
    }

    /// Runs a single round and returns its metrics.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors (e.g. architecture mismatches).
    pub fn run_round(&mut self) -> Result<RoundMetrics, CoreError> {
        // Sample active clients without replacement, ascending for
        // deterministic processing order.
        let mut ids: Vec<usize> = (0..self.dataset.num_clients()).collect();
        ids.shuffle(&mut self.rng);
        let mut active: Vec<usize> = ids
            .into_iter()
            .take(self.config.clients_per_round)
            .collect();
        active.sort_unstable();

        let outcomes = self.run_active_clients(&active)?;

        // Publication phase: attach all improvements to the shared tangle.
        // With failure injection enabled, some publications are lost on
        // the (simulated) network.
        let mut published = 0;
        for outcome in &outcomes {
            if let Some(params) = &outcome.published {
                if self.config.publication_dropout > 0.0
                    && self.rng.gen::<f32>() < self.config.publication_dropout
                {
                    continue;
                }
                let parents = [outcome.parents.0, outcome.parents.1];
                // The tangle dedups parents on attach; mirror that here so
                // the incremental graph matches a full re-scan exactly.
                let mut parent_issuers = vec![self.tangle.get(parents[0])?.issuer()];
                if parents[1] != parents[0] {
                    parent_issuers.push(self.tangle.get(parents[1])?.issuer());
                }
                self.tangle.attach_with_meta(
                    ModelPayload::new(params.clone()),
                    &parents,
                    Some(outcome.client),
                    self.round as u32,
                )?;
                self.graph.record(outcome.client, &parent_issuers);
                published += 1;
            }
        }

        let total_walk: Duration = outcomes.iter().map(|o| o.walk_duration).sum();
        let metrics = RoundMetrics {
            round: self.round,
            active_clients: outcomes.iter().map(|o| o.client).collect(),
            published,
            accuracies: outcomes.iter().map(|o| o.trained.accuracy).collect(),
            losses: outcomes.iter().map(|o| o.trained.loss).collect(),
            reference_accuracies: outcomes.iter().map(|o| o.reference.accuracy).collect(),
            mean_walk_duration: total_walk
                .checked_div(outcomes.len().max(1) as u32)
                .unwrap_or(Duration::ZERO),
            candidates_evaluated: outcomes.iter().map(|o| o.candidates_evaluated).sum(),
            walk_steps: outcomes.iter().map(|o| o.walk_steps).sum(),
            fresh_evaluations: outcomes.iter().map(|o| o.fresh_evaluations).sum(),
            cached_evaluations: outcomes.iter().map(|o| o.cached_evaluations).sum(),
        };
        self.history.push(metrics.clone());
        self.round += 1;
        Ok(metrics)
    }

    /// Runs the Figure 1 loop for all active clients against the current
    /// tangle snapshot, in parallel if configured.
    fn run_active_clients(&mut self, active: &[usize]) -> Result<Vec<TrainOutcome>, CoreError> {
        let config = self.config;
        let dataset = &self.dataset;
        let tangle = &self.tangle;
        // Collect disjoint &mut borrows of the active clients.
        let mut remaining: &mut [DagClient] = &mut self.clients;
        let mut taken = 0usize;
        let mut client_refs: Vec<&mut DagClient> = Vec::with_capacity(active.len());
        for &idx in active {
            let offset = idx - taken;
            let (_, rest) = remaining.split_at_mut(offset);
            let (client, rest) = rest.split_first_mut().expect("index in range");
            client_refs.push(client);
            remaining = rest;
            taken = idx + 1;
        }
        if config.parallel && active.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = client_refs
                    .into_iter()
                    .zip(active)
                    .map(|(client, &idx)| {
                        let data = &dataset.clients()[idx];
                        // Lock-free read path: every worker walks the
                        // sharded store directly, no guard held.
                        scope.spawn(move || client.train_round(tangle, data, &config))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread panicked"))
                    .collect::<Result<Vec<_>, _>>()
            })
        } else {
            client_refs
                .into_iter()
                .zip(active)
                .map(|(client, &idx)| client.train_round(tangle, &dataset.clients()[idx], &config))
                .collect()
        }
    }

    /// Runs rounds until `config.rounds` have completed; returns the
    /// metrics of the newly run rounds.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Simulation::run_round`].
    pub fn run(&mut self) -> Result<Vec<RoundMetrics>, CoreError> {
        let mut out = Vec::new();
        while self.round < self.config.rounds {
            out.push(self.run_round()?);
        }
        Ok(out)
    }

    /// The derived client graph `G_clients` (§4.3): the edge weight
    /// between two clients is the number of direct approvals between their
    /// transactions, in either direction. Genesis approvals and
    /// self-approvals are skipped.
    ///
    /// Maintained incrementally at publish time (`O(parents)` per
    /// transaction); [`crate::client_graph_of`] re-derives the same graph
    /// by a full scan and serves as the regression oracle.
    pub fn client_graph(&self) -> Graph {
        self.graph.graph().clone()
    }

    /// The approval pureness (Table 2): the fraction of approval edges
    /// whose endpoints were published by clients of the same ground-truth
    /// cluster. Maintained incrementally at publish time.
    ///
    /// Returns 1.0 when no qualifying approvals exist yet.
    pub fn approval_pureness(&self) -> f64 {
        self.graph.approval_pureness()
    }

    /// Computes the §4.3 specialization metrics of the current tangle.
    pub fn specialization_metrics(&self) -> SpecializationMetrics {
        let graph = self.client_graph();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xC0FF_EE00 ^ self.round as u64);
        let partition = louvain(&graph, &mut rng);
        SpecializationMetrics {
            modularity: modularity(&graph, &partition),
            partitions: partition_count(&partition),
            misclassification: misclassification_fraction(
                &partition,
                &self.dataset.cluster_labels(),
            ),
            approval_pureness: self.approval_pureness(),
            partition,
        }
    }

    /// Evaluates every client's walk-selected reference model on its local
    /// test data; returns `(client, evaluation, reference tips)` triples.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn reference_evaluations(&mut self) -> Result<Vec<ReferenceEvaluation>, CoreError> {
        let config = self.config;
        let tangle = &self.tangle;
        let dataset = &self.dataset;
        let mut out = Vec::with_capacity(self.clients.len());
        for (idx, client) in self.clients.iter_mut().enumerate() {
            let data = &dataset.clients()[idx];
            let (params, tips) = client.reference_model(tangle, data, &config)?;
            let eval = client.evaluate_with(&params, data.test_x(), data.test_y())?;
            out.push((client.id(), eval, tips));
        }
        Ok(out)
    }

    /// Every client's walk-selected reference parameter vector, in
    /// client-id order — the flat points the analysis layer clusters.
    ///
    /// Like [`Simulation::reference_evaluations`], the walks draw from
    /// each client's own RNG stream, so calling this advances those
    /// streams deterministically (the same call sites always see the
    /// same state).
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn reference_parameters(&mut self) -> Result<Vec<Vec<f32>>, CoreError> {
        let config = self.config;
        let tangle = &self.tangle;
        let dataset = &self.dataset;
        let mut out = Vec::with_capacity(self.clients.len());
        for (idx, client) in self.clients.iter_mut().enumerate() {
            let data = &dataset.clients()[idx];
            let (params, _) = client.reference_model(tangle, data, &config)?;
            out.push(params);
        }
        Ok(out)
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.round)
            .field("clients", &self.clients.len())
            .field("transactions", &self.tangle.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::sync::Arc;

    fn factory(features: usize) -> ModelFactory {
        Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        })
    }

    fn small_sim(rounds: usize, parallel: bool) -> Simulation {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 6,
            samples_per_client: 40,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let config = DagConfig {
            rounds,
            clients_per_round: 3,
            local_batches: 3,
            parallel,
            ..DagConfig::default()
        };
        Simulation::new(config, dataset, factory(features))
    }

    #[test]
    fn rounds_grow_the_tangle() {
        let mut sim = small_sim(3, false);
        assert_eq!(sim.tangle().len(), 1);
        sim.run().unwrap();
        assert_eq!(sim.round(), 3);
        assert!(sim.tangle().len() > 1, "no transactions were published");
        assert_eq!(sim.history().len(), 3);
    }

    #[test]
    fn parallel_and_sequential_both_work() {
        let mut seq = small_sim(2, false);
        let mut par = small_sim(2, true);
        seq.run().unwrap();
        par.run().unwrap();
        // Both publish transactions; exact equality is not required since
        // thread scheduling does not affect outcomes, but publication
        // ordering within a round is normalised, so the counts match.
        assert_eq!(seq.tangle().len(), par.tangle().len());
    }

    #[test]
    fn metrics_reflect_active_clients() {
        let mut sim = small_sim(1, false);
        let m = sim.run_round().unwrap();
        assert_eq!(m.active_clients.len(), 3);
        assert_eq!(m.accuracies.len(), 3);
        assert_eq!(m.losses.len(), 3);
        assert!(m.published <= 3);
    }

    #[test]
    fn client_graph_counts_approvals() {
        let mut sim = small_sim(5, false);
        sim.run().unwrap();
        let graph = sim.client_graph();
        assert_eq!(graph.num_nodes(), 6);
        // After a few rounds some inter-client approvals must exist.
        assert!(graph.total_weight() > 0.0);
    }

    /// Regression: the incrementally-maintained client graph and pureness
    /// must agree with the full re-scan oracles after every round.
    #[test]
    fn incremental_client_graph_matches_full_rescan() {
        let mut sim = small_sim(5, false);
        for _ in 0..5 {
            sim.run_round().unwrap();
            let oracle = crate::client_graph_of(sim.tangle(), sim.dataset().num_clients());
            assert_eq!(sim.client_graph().edges(), oracle.edges());
            let oracle_pureness =
                crate::approval_pureness_of(sim.tangle(), &sim.dataset().cluster_labels());
            assert!((sim.approval_pureness() - oracle_pureness).abs() < 1e-12);
        }
    }

    #[test]
    fn approval_pureness_is_a_fraction() {
        let mut sim = small_sim(5, false);
        assert_eq!(sim.approval_pureness(), 1.0, "empty tangle is pure");
        sim.run().unwrap();
        let p = sim.approval_pureness();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn specialization_metrics_are_consistent() {
        let mut sim = small_sim(6, false);
        sim.run().unwrap();
        let m = sim.specialization_metrics();
        assert!((-0.5..=1.0).contains(&m.modularity));
        assert!(m.partitions >= 1);
        assert!((0.0..=1.0).contains(&m.misclassification));
        assert_eq!(m.partition.len(), 6);
    }

    #[test]
    fn reference_evaluations_cover_all_clients() {
        let mut sim = small_sim(2, false);
        sim.run().unwrap();
        let evals = sim.reference_evaluations().unwrap();
        assert_eq!(evals.len(), 6);
        for (client, eval, _) in evals {
            assert!(client < 6);
            assert!((0.0..=1.0).contains(&eval.accuracy));
        }
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let mut a = small_sim(3, false);
        let mut b = small_sim(3, false);
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(a.tangle().len(), b.tangle().len());
        let acc_a: Vec<f32> = a.history().iter().map(|m| m.mean_accuracy()).collect();
        let acc_b: Vec<f32> = b.history().iter().map(|m| m.mean_accuracy()).collect();
        assert_eq!(acc_a, acc_b);
    }

    #[test]
    #[should_panic(expected = "clients_per_round")]
    fn oversized_round_panics() {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 3,
            samples_per_client: 40,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let config = DagConfig {
            clients_per_round: 10,
            ..DagConfig::default()
        };
        Simulation::new(config, dataset, factory(features));
    }

    #[test]
    fn run_is_idempotent_after_completion() {
        let mut sim = small_sim(2, false);
        sim.run().unwrap();
        let more = sim.run().unwrap();
        assert!(more.is_empty());
        assert_eq!(sim.round(), 2);
    }
}
