//! Batched, cached candidate-model evaluation — the walk's hot path.

use std::collections::HashMap;

use dagfl_nn::{EvalScratch, Evaluation, Model};
use dagfl_tangle::{TangleRead, TxId};
use dagfl_tensor::Matrix;

use crate::{CoreError, ModelPayload};

/// Fresh-vs-cached evaluation counts, cumulative per evaluator.
///
/// A *fresh* evaluation loads a candidate's parameters into the scratch
/// model and runs a forward pass over the client's local test data; a
/// *cached* one is answered from the per-transaction accuracy cache.
/// The split is the cost model of the scalability experiment (Figure 15):
/// wall-clock time of tip selection is dominated by fresh evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCounters {
    /// Evaluations that ran a real forward pass.
    pub fresh: usize,
    /// Evaluations answered from the cache.
    pub cached: usize,
}

impl EvalCounters {
    /// The counts accumulated since an earlier snapshot of the same
    /// evaluator.
    pub fn since(self, earlier: EvalCounters) -> EvalCounters {
        EvalCounters {
            fresh: self.fresh - earlier.fresh,
            cached: self.cached - earlier.cached,
        }
    }

    /// Total evaluations, fresh and cached.
    pub fn total(self) -> usize {
        self.fresh + self.cached
    }

    /// Fraction of evaluations that were fresh (forward passes) rather
    /// than cache hits; `0.0` when nothing was evaluated.
    pub fn fresh_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.fresh as f64 / self.total() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    generation: u64,
    accuracy: f32,
}

/// A client's evaluation engine: the scratch model, reusable forward-pass
/// buffers and a generation-stamped per-transaction accuracy cache.
///
/// Every step of the accuracy-biased walk (§4.2) scores all approvers of
/// the current transaction on the client's local test data; the evaluator
/// owns everything that scoring needs, so callers hand around one
/// `&mut ModelEvaluator` instead of threading a scratch model and a bare
/// `HashMap` separately.
///
/// # Cache generations
///
/// Payloads are immutable, so a cached accuracy stays valid as long as
/// the client's *local data* does. When the data changes (e.g. a
/// poisoning attack flips labels mid-run), [`ModelEvaluator::invalidate`]
/// bumps the generation: every cache entry is stamped with the generation
/// it was computed under and entries from older generations are ignored
/// on lookup, so a stale accuracy can never leak into a walk — there is
/// no "forgot to clear the cache" failure mode.
pub struct ModelEvaluator {
    model: Box<dyn Model>,
    scratch: EvalScratch,
    cache: HashMap<TxId, CacheEntry>,
    generation: u64,
    counters: EvalCounters,
}

impl ModelEvaluator {
    /// Wraps a scratch model (the evaluator takes ownership; training
    /// code reaches it through [`ModelEvaluator::model_and_scratch`]).
    pub fn new(model: Box<dyn Model>) -> Self {
        Self {
            model,
            scratch: EvalScratch::new(),
            cache: HashMap::new(),
            generation: 0,
            counters: EvalCounters::default(),
        }
    }

    /// The scratch model (read-only).
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The scratch model and the evaluation buffers as disjoint mutable
    /// borrows, for callers that train the model and evaluate it in the
    /// same scope.
    pub fn model_and_scratch(&mut self) -> (&mut dyn Model, &mut EvalScratch) {
        (self.model.as_mut(), &mut self.scratch)
    }

    /// The current cache generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Invalidates all cached accuracies by bumping the generation.
    /// Must be called whenever the client's local data changes.
    pub fn invalidate(&mut self) {
        self.generation += 1;
    }

    /// Number of cached accuracies that are valid under the current
    /// generation.
    pub fn cache_len(&self) -> usize {
        self.cache
            .values()
            .filter(|e| e.generation == self.generation)
            .count()
    }

    /// Cumulative fresh/cached evaluation counts (see
    /// [`EvalCounters::since`] for per-phase deltas).
    pub fn counters(&self) -> EvalCounters {
        self.counters
    }

    /// Accuracy of one transaction's model on `(x, y)`, cached per
    /// transaction id under the current generation.
    ///
    /// Mirrors the walk-bias contract: a missing transaction or an
    /// architecture mismatch scores `0.0` instead of erroring, so a
    /// malformed payload merely becomes an unattractive walk target.
    ///
    /// Generic over the storage backend: plain [`crate::ModelTangle`]s,
    /// [`crate::ShardedModelTangle`]s and replica views all score the
    /// same way.
    pub fn score<T: TangleRead<ModelPayload>>(
        &mut self,
        tangle: &T,
        id: TxId,
        x: &Matrix,
        y: &[usize],
    ) -> f32 {
        if let Some(entry) = self.cache.get(&id) {
            if entry.generation == self.generation {
                self.counters.cached += 1;
                return entry.accuracy;
            }
        }
        let accuracy = match tangle.payload_of(id) {
            Ok(payload) => {
                self.counters.fresh += 1;
                let params = payload.params();
                // Zero-copy path: evaluate straight from the payload
                // slice; models without one get the parameters loaded.
                let evaluation =
                    match self
                        .model
                        .evaluate_flat_params(params, x, y, &mut self.scratch)
                    {
                        Some(result) => result,
                        None => self.model.set_parameters(params).and_then(|()| {
                            self.model.evaluate_with_scratch(x, y, &mut self.scratch)
                        }),
                    };
                evaluation.map(|e| e.accuracy).unwrap_or(0.0)
            }
            Err(_) => 0.0,
        };
        self.cache.insert(
            id,
            CacheEntry {
                generation: self.generation,
                accuracy,
            },
        );
        accuracy
    }

    /// Scores a whole candidate slate in one call, in slate order.
    pub fn score_slate<T: TangleRead<ModelPayload>>(
        &mut self,
        tangle: &T,
        candidates: &[TxId],
        x: &Matrix,
        y: &[usize],
    ) -> Vec<f32> {
        candidates
            .iter()
            .map(|&id| self.score(tangle, id, x, y))
            .collect()
    }

    /// Evaluates an arbitrary parameter vector on `(x, y)` using the
    /// scratch model and buffers (uncached — parameter vectors have no
    /// transaction identity).
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter count or data shape mismatches.
    pub fn evaluate_params(
        &mut self,
        params: &[f32],
        x: &Matrix,
        y: &[usize],
    ) -> Result<Evaluation, CoreError> {
        self.model.set_parameters(params)?;
        Ok(self.model.evaluate_with_scratch(x, y, &mut self.scratch)?)
    }

    /// Predicts classes for `x` using an arbitrary parameter vector
    /// loaded into the scratch model.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter count or data shape mismatches.
    pub fn predict_params(&mut self, params: &[f32], x: &Matrix) -> Result<Vec<usize>, CoreError> {
        self.model.set_parameters(params)?;
        Ok(self.model.predict(x)?)
    }
}

impl std::fmt::Debug for ModelEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEvaluator")
            .field("generation", &self.generation)
            .field("cached", &self.cache_len())
            .field("counters", &self.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelTangle;
    use dagfl_nn::{Dense, Sequential};
    use dagfl_tangle::Tangle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ModelTangle, TxId, ModelEvaluator, Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let model = Sequential::new(vec![Box::new(Dense::new(&mut rng, 2, 2))]);
        let params = model.parameters();
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(params.clone()));
        let g = tangle.genesis();
        let tip = tangle.attach(ModelPayload::new(params), &[g]).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let y = vec![0, 1];
        (tangle, tip, ModelEvaluator::new(Box::new(model)), x, y)
    }

    #[test]
    fn score_is_cached_per_transaction() {
        let (tangle, tip, mut eval, x, y) = setup();
        let first = eval.score(&tangle, tip, &x, &y);
        let second = eval.score(&tangle, tip, &x, &y);
        assert_eq!(first, second);
        assert_eq!(
            eval.counters(),
            EvalCounters {
                fresh: 1,
                cached: 1
            }
        );
        assert_eq!(eval.cache_len(), 1);
    }

    #[test]
    fn invalidate_bumps_generation_and_forces_reevaluation() {
        let (tangle, tip, mut eval, x, y) = setup();
        eval.score(&tangle, tip, &x, &y);
        assert_eq!(eval.generation(), 0);
        eval.invalidate();
        assert_eq!(eval.generation(), 1);
        assert_eq!(eval.cache_len(), 0, "stale entries are not current");
        eval.score(&tangle, tip, &x, &y);
        assert_eq!(
            eval.counters(),
            EvalCounters {
                fresh: 2,
                cached: 0
            },
            "a bumped generation must force a fresh evaluation"
        );
        assert_eq!(eval.cache_len(), 1);
    }

    #[test]
    fn score_slate_covers_all_candidates() {
        let (tangle, tip, mut eval, x, y) = setup();
        let g = tangle.genesis();
        let scores = eval.score_slate(&tangle, &[g, tip, g], &x, &y);
        assert_eq!(scores.len(), 3);
        assert_eq!(scores[0], scores[2], "repeated candidate hits the cache");
        assert_eq!(
            eval.counters(),
            EvalCounters {
                fresh: 2,
                cached: 1
            }
        );
    }

    #[test]
    fn missing_and_mismatched_payloads_score_zero() {
        let (mut tangle, _, mut eval, x, y) = setup();
        let g = tangle.genesis();
        let weird = tangle
            .attach(ModelPayload::new(vec![1.0; 3]), &[g])
            .unwrap();
        assert_eq!(eval.score(&tangle, weird, &x, &y), 0.0);
        // An id the tangle does not contain (minted by a larger tangle).
        let mut other: ModelTangle = Tangle::new(ModelPayload::new(vec![0.0]));
        let g2 = other.genesis();
        let mut missing = g2;
        for _ in 0..5 {
            missing = other
                .attach(ModelPayload::new(vec![0.0]), &[missing])
                .unwrap();
        }
        assert!(tangle.get(missing).is_err(), "id must be unknown");
        assert_eq!(eval.score(&tangle, missing, &x, &y), 0.0);
        // The mismatch was a real (fresh) attempt; the missing id never
        // reached the model.
        assert_eq!(eval.counters().fresh, 1);
    }

    #[test]
    fn counter_deltas_isolate_phases() {
        let (tangle, tip, mut eval, x, y) = setup();
        eval.score(&tangle, tip, &x, &y);
        let snapshot = eval.counters();
        eval.score(&tangle, tip, &x, &y);
        eval.score(&tangle, tangle.genesis(), &x, &y);
        let delta = eval.counters().since(snapshot);
        assert_eq!(
            delta,
            EvalCounters {
                fresh: 1,
                cached: 1
            }
        );
        assert_eq!(delta.total(), 2);
    }

    #[test]
    fn evaluate_params_matches_tangle_score() {
        let (tangle, tip, mut eval, x, y) = setup();
        let params = tangle.get(tip).unwrap().payload().share();
        let direct = eval.evaluate_params(&params, &x, &y).unwrap();
        let scored = eval.score(&tangle, tip, &x, &y);
        assert_eq!(direct.accuracy, scored);
        assert!(eval.evaluate_params(&[0.0; 3], &x, &y).is_err());
    }
}
