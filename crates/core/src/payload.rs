//! The transaction payload: immutable model weights.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_nn::Model;
use dagfl_tangle::{ShardedTangle, SharedTangle, Tangle};

/// A published model update: the full flat parameter vector, shared
/// immutably between the tangle and any evaluation caches.
#[derive(Debug, Clone)]
pub struct ModelPayload {
    params: Arc<Vec<f32>>,
}

impl ModelPayload {
    /// Wraps a parameter vector.
    pub fn new(params: Vec<f32>) -> Self {
        Self {
            params: Arc::new(params),
        }
    }

    /// Wraps an already-shared parameter vector without copying — the
    /// payload and every other holder of the `Arc` stay one allocation.
    pub fn from_shared(params: Arc<Vec<f32>>) -> Self {
        Self { params }
    }

    /// The model weights.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// A shared handle to the weights (no copy).
    pub fn share(&self) -> Arc<Vec<f32>> {
        Arc::clone(&self.params)
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the payload holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

impl From<Vec<f32>> for ModelPayload {
    fn from(params: Vec<f32>) -> Self {
        Self::new(params)
    }
}

/// A tangle of model updates.
pub type ModelTangle = Tangle<ModelPayload>;

/// A thread-safe tangle of model updates.
pub type SharedModelTangle = SharedTangle<ModelPayload>;

/// A concurrent, shard-indexed tangle of model updates whose read path
/// never takes a global lock — the storage backend of both simulators.
pub type ShardedModelTangle = ShardedTangle<ModelPayload>;

/// Creates fresh model instances for clients and the genesis.
///
/// The factory is called with a seeded RNG so that every simulation is
/// reproducible; all models it returns must share one architecture (equal
/// parameter counts).
pub type ModelFactory = Arc<dyn Fn(&mut StdRng) -> Box<dyn Model> + Send + Sync>;

/// Builds a synthetic benchmark tangle: `n` transactions whose payloads
/// are ±0.05-perturbed copies of `params`, each approving one recent
/// transaction (within the last 8) and one uniformly random earlier one.
///
/// This is the shared workload of the `walk_eval` / `accuracy_walk`
/// benches and the `dagfl perf` smoke — one construction, so their
/// numbers stay comparable.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn perturbed_model_tangle(n: usize, params: &[f32], seed: u64) -> ModelTangle {
    assert!(n > 0, "a tangle needs at least the genesis");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tangle = Tangle::new(ModelPayload::new(params.to_vec()));
    let mut ids = vec![tangle.genesis()];
    for _ in 1..n {
        let perturbed: Vec<f32> = params
            .iter()
            .map(|&p| p + rng.gen_range(-0.05f32..0.05))
            .collect();
        let recent = ids.len().saturating_sub(8);
        let p1 = ids[rng.gen_range(recent..ids.len())];
        let p2 = ids[rng.gen_range(0..ids.len())];
        let id = tangle
            .attach(ModelPayload::new(perturbed), &[p1, p2])
            .expect("parents exist");
        ids.push(id);
    }
    tangle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_shares_without_copying() {
        let p = ModelPayload::new(vec![1.0, 2.0]);
        let a = p.share();
        let b = p.share();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(p.params(), &[1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn from_vec_works() {
        let p: ModelPayload = vec![0.5].into();
        assert_eq!(p.params(), &[0.5]);
    }

    #[test]
    fn perturbed_tangle_has_requested_size_and_deterministic_payloads() {
        let a = perturbed_model_tangle(20, &[1.0; 8], 7);
        let b = perturbed_model_tangle(20, &[1.0; 8], 7);
        assert_eq!(a.len(), 20);
        for (ta, tb) in a.iter().zip(b.iter()) {
            assert_eq!(ta.id(), tb.id());
            assert_eq!(ta.payload().params(), tb.payload().params());
            assert_eq!(ta.parents(), tb.parents());
        }
        assert_eq!(perturbed_model_tangle(1, &[0.0], 0).len(), 1);
    }

    #[test]
    fn model_tangle_stores_payloads() {
        let mut tangle: ModelTangle = Tangle::new(ModelPayload::new(vec![0.0; 4]));
        let g = tangle.genesis();
        let id = tangle
            .attach(ModelPayload::new(vec![1.0; 4]), &[g])
            .unwrap();
        assert_eq!(tangle.get(id).unwrap().payload().params(), &[1.0; 4]);
    }
}
