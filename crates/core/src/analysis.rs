//! Specialization analyses beyond the §4.3 graph metrics: how the
//! *models* themselves diverge across clusters.
//!
//! The paper demonstrates specialization through the approval structure
//! (pureness, modularity). These analyses measure the complementary
//! parameter- and prediction-space views:
//!
//! * the **cluster accuracy matrix** — each cluster's consensus model
//!   evaluated on every cluster's pooled test data; a diagonal-dominant
//!   matrix means models specialised,
//! * the **cluster divergence matrix** — pairwise L2 distance between the
//!   clusters' mean consensus parameters.

use std::collections::HashMap;

use dagfl_nn::average_parameters;
use dagfl_tensor::{l2_distance, Matrix};

use crate::{CoreError, Simulation};

/// Pooled test data of one ground-truth cluster.
#[derive(Debug, Clone)]
struct ClusterPool {
    x: Matrix,
    y: Vec<usize>,
}

/// The cross-cluster evaluation: `accuracy[a][b]` is cluster `a`'s mean
/// consensus model evaluated on cluster `b`'s pooled test data, plus the
/// pairwise parameter distances `divergence[a][b]`.
#[derive(Debug, Clone)]
pub struct ClusterSpecialization {
    /// The distinct cluster labels, sorted; indexes the matrices below.
    pub clusters: Vec<usize>,
    /// `accuracy[a][b]`: cluster a's model on cluster b's data.
    pub accuracy: Vec<Vec<f32>>,
    /// `divergence[a][b]`: L2 distance between the mean consensus
    /// parameters of clusters a and b (0 on the diagonal).
    pub divergence: Vec<Vec<f32>>,
}

impl ClusterSpecialization {
    /// Mean of the diagonal (own-cluster accuracy).
    pub fn mean_own_accuracy(&self) -> f32 {
        let k = self.clusters.len();
        if k == 0 {
            return 0.0;
        }
        (0..k).map(|i| self.accuracy[i][i]).sum::<f32>() / k as f32
    }

    /// Mean of the off-diagonal entries (foreign-cluster accuracy).
    pub fn mean_foreign_accuracy(&self) -> f32 {
        let k = self.clusters.len();
        if k < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0;
        for a in 0..k {
            for b in 0..k {
                if a != b {
                    total += self.accuracy[a][b];
                    count += 1;
                }
            }
        }
        total / count as f32
    }

    /// The *specialization gap*: own-cluster minus foreign-cluster mean
    /// accuracy. Positive once models have specialised.
    ///
    /// Defined as 0 for degenerate single-cluster matrices: with no
    /// foreign cluster to compare against, a 1×1 accuracy matrix would
    /// otherwise report its sole entry as a "gap" and make an
    /// unclustered dataset look maximally specialised.
    pub fn specialization_gap(&self) -> f32 {
        if self.clusters.len() < 2 {
            return 0.0;
        }
        self.mean_own_accuracy() - self.mean_foreign_accuracy()
    }
}

/// Computes the cross-cluster specialization matrices from each client's
/// current walk-selected reference model.
///
/// # Errors
///
/// Propagates model/tangle errors, and returns [`CoreError::Config`]
/// for datasets with fewer than two ground-truth clusters: the
/// cross-cluster matrices degenerate to 1×1 and every derived statistic
/// (gap, foreign accuracy) silently reads as "specialised" when there
/// is nothing to specialise against.
///
/// # Panics
///
/// Panics if the dataset has no clients (impossible for constructed
/// datasets).
#[allow(clippy::needless_range_loop)] // idx indexes clients, datasets and labels together
pub fn cluster_specialization(sim: &mut Simulation) -> Result<ClusterSpecialization, CoreError> {
    // 1. Collect per cluster: member reference parameters and pooled test
    //    data.
    let cluster_labels = sim.dataset().cluster_labels();
    let mut clusters: Vec<usize> = cluster_labels.clone();
    clusters.sort_unstable();
    clusters.dedup();
    if clusters.len() < 2 {
        return Err(CoreError::Config(format!(
            "cluster specialization needs at least 2 ground-truth clusters, dataset `{}` has {}",
            sim.dataset().name(),
            clusters.len()
        )));
    }

    // Reference parameters per client.
    let config = sim.config;
    let tangle = &sim.tangle;
    let mut per_cluster_params: HashMap<usize, Vec<Vec<f32>>> = HashMap::new();
    for idx in 0..sim.dataset.num_clients() {
        let data = &sim.dataset.clients()[idx];
        let client = &mut sim.clients[idx];
        let (params, _) = client.reference_model(tangle, data, &config)?;
        per_cluster_params
            .entry(cluster_labels[idx])
            .or_default()
            .push(params);
    }

    // Pooled test data per cluster.
    let mut pools: HashMap<usize, ClusterPool> = HashMap::new();
    for (idx, data) in sim.dataset.clients().iter().enumerate() {
        let cluster = cluster_labels[idx];
        let entry = pools.entry(cluster).or_insert_with(|| ClusterPool {
            x: Matrix::zeros(0, data.test_x().cols()),
            y: Vec::new(),
        });
        // Append rows.
        let mut combined =
            Matrix::zeros(entry.x.rows() + data.test_x().rows(), data.test_x().cols());
        for r in 0..entry.x.rows() {
            combined.row_mut(r).copy_from_slice(entry.x.row(r));
        }
        for r in 0..data.test_x().rows() {
            combined
                .row_mut(entry.x.rows() + r)
                .copy_from_slice(data.test_x().row(r));
        }
        entry.x = combined;
        entry.y.extend_from_slice(data.test_y());
    }

    // 2. Mean parameters per cluster.
    let mean_params: HashMap<usize, Vec<f32>> = per_cluster_params
        .iter()
        .map(|(&c, params)| {
            let refs: Vec<&[f32]> = params.iter().map(Vec::as_slice).collect();
            (c, average_parameters(&refs))
        })
        .collect();

    // 3. Cross-evaluate using client 0's scratch model.
    let k = clusters.len();
    let mut accuracy = vec![vec![0.0f32; k]; k];
    let mut divergence = vec![vec![0.0f32; k]; k];
    for (a_idx, &a) in clusters.iter().enumerate() {
        for (b_idx, &b) in clusters.iter().enumerate() {
            let pool = &pools[&b];
            let eval = sim.clients[0].evaluate_with(&mean_params[&a], &pool.x, &pool.y)?;
            accuracy[a_idx][b_idx] = eval.accuracy;
            divergence[a_idx][b_idx] = l2_distance(&mean_params[&a], &mean_params[&b]);
        }
    }
    Ok(ClusterSpecialization {
        clusters,
        accuracy,
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagConfig, ModelFactory};
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use rand::rngs::StdRng;
    use std::sync::Arc;

    fn run_sim(rounds: usize) -> Simulation {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 9,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 24)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 24, 10)),
            ])) as Box<dyn Model>
        });
        let mut sim = Simulation::new(
            DagConfig {
                rounds,
                clients_per_round: 5,
                local_batches: 5,
                ..DagConfig::default()
            },
            dataset,
            factory,
        );
        sim.run().expect("simulation runs");
        sim
    }

    #[test]
    fn matrices_have_cluster_dimensions() {
        let mut sim = run_sim(5);
        let spec = cluster_specialization(&mut sim).unwrap();
        assert_eq!(spec.clusters, vec![0, 1, 2]);
        assert_eq!(spec.accuracy.len(), 3);
        assert_eq!(spec.divergence.len(), 3);
        for row in &spec.accuracy {
            assert_eq!(row.len(), 3);
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn divergence_diagonal_is_zero_and_symmetric() {
        let mut sim = run_sim(5);
        let spec = cluster_specialization(&mut sim).unwrap();
        for a in 0..3 {
            assert_eq!(spec.divergence[a][a], 0.0);
            for b in 0..3 {
                assert!((spec.divergence[a][b] - spec.divergence[b][a]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn single_cluster_dataset_is_rejected_not_reported_as_specialized() {
        use dagfl_datasets::fmnist_by_author;
        // Every by-author client carries all classes in one ground-truth
        // cluster: the 1×1 matrices would read as a positive
        // "specialization gap" if they were computed.
        let dataset = fmnist_by_author(&FmnistConfig {
            num_clients: 4,
            samples_per_client: 30,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 8)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 8, 10)),
            ])) as Box<dyn Model>
        });
        let mut sim = Simulation::new(
            DagConfig {
                rounds: 1,
                clients_per_round: 2,
                local_batches: 2,
                ..DagConfig::default()
            },
            dataset,
            factory,
        );
        sim.run().expect("simulation runs");
        let err = cluster_specialization(&mut sim).unwrap_err();
        assert!(
            matches!(err, CoreError::Config(_)),
            "expected Config error, got {err:?}"
        );
        assert!(err.to_string().contains("at least 2"), "{err}");
    }

    #[test]
    fn degenerate_gap_is_zero_not_specialized() {
        // A hand-built 1×1 matrix must not report its sole accuracy
        // entry as a specialization gap.
        let spec = ClusterSpecialization {
            clusters: vec![0],
            accuracy: vec![vec![0.9]],
            divergence: vec![vec![0.0]],
        };
        assert_eq!(spec.specialization_gap(), 0.0);
        assert_eq!(spec.mean_foreign_accuracy(), 0.0);
    }

    #[test]
    fn specialization_gap_becomes_positive_on_clustered_data() {
        let mut sim = run_sim(12);
        let spec = cluster_specialization(&mut sim).unwrap();
        // Disjoint class clusters: a cluster's model cannot predict
        // foreign classes, so the gap must be clearly positive.
        assert!(
            spec.specialization_gap() > 0.2,
            "gap {} too small (own {}, foreign {})",
            spec.specialization_gap(),
            spec.mean_own_accuracy(),
            spec.mean_foreign_accuracy()
        );
    }
}
