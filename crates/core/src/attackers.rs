//! Active attackers that publish manipulated transactions directly
//! (§4.4; threat model adopted from Schmid et al.).
//!
//! The *random-weight* attacker floods the DAG with transactions carrying
//! garbage parameters. Its prediction accuracy is near chance, so the
//! accuracy-aware walk practically never selects such transactions — the
//! attacker must trade poisoning effect against selection probability.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_datasets::FederatedDataset;
use dagfl_tangle::{RandomWalker, TangleRead, TxId, UniformBias};

use crate::{CoreError, DagConfig, ModelFactory, ModelPayload, Simulation};

/// Configuration of a random-weight flooding attack.
#[derive(Debug, Clone, Copy)]
pub struct GarbageAttackConfig {
    /// The underlying simulation configuration (rounds included).
    pub dag: DagConfig,
    /// Rounds of clean training before injections start.
    ///
    /// Flooding an *untrained* network is far more effective — when every
    /// model is near chance level the accuracy bias has no gap to
    /// discriminate with. The paper's threat analysis assumes an
    /// established network (its label-flip attack starts after 100 clean
    /// rounds); the same warm-up applies here.
    pub clean_rounds: usize,
    /// Garbage transactions injected per round.
    pub attacks_per_round: usize,
    /// Garbage weights are drawn uniformly from `[-scale, scale]`.
    pub weight_scale: f32,
}

impl Default for GarbageAttackConfig {
    fn default() -> Self {
        Self {
            dag: DagConfig::default(),
            clean_rounds: 100,
            attacks_per_round: 2,
            weight_scale: 1.0,
        }
    }
}

/// Per-measurement metrics of the flooding attack.
#[derive(Debug, Clone)]
pub struct GarbageRoundMetrics {
    /// Global round index at measurement time.
    pub round: usize,
    /// Mean number of garbage transactions in the past cone of a client's
    /// reference tips.
    pub garbage_in_cone: f64,
    /// Fraction of reference tips that *are* garbage transactions — the
    /// direct takeover rate.
    pub garbage_tip_fraction: f64,
}

/// Orchestrates a random-weight flooding attack against a [`Simulation`].
pub struct GarbageAttackScenario {
    config: GarbageAttackConfig,
    simulation: Simulation,
    attacker_rng: StdRng,
    num_parameters: usize,
    garbage: HashSet<TxId>,
}

impl GarbageAttackScenario {
    /// Creates a scenario over the given dataset and model factory.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Simulation::new`].
    pub fn new(
        config: GarbageAttackConfig,
        dataset: FederatedDataset,
        factory: ModelFactory,
    ) -> Self {
        let mut probe_rng = StdRng::seed_from_u64(config.dag.seed ^ 0x6A5B);
        let num_parameters = factory(&mut probe_rng).num_parameters();
        let simulation = Simulation::new(config.dag, dataset, factory);
        Self {
            config,
            simulation,
            attacker_rng: StdRng::seed_from_u64(config.dag.seed ^ 0xDEAD_BEEF),
            num_parameters,
            garbage: HashSet::new(),
        }
    }

    /// The underlying simulation.
    pub fn simulation(&self) -> &Simulation {
        &self.simulation
    }

    /// Ids of all garbage transactions injected so far.
    pub fn garbage_transactions(&self) -> &HashSet<TxId> {
        &self.garbage
    }

    /// Runs one benign round followed by the attacker's injections.
    ///
    /// Garbage transactions are published anonymously (no issuer) with
    /// parents chosen by unbiased walks — an attacker maximising spread
    /// rather than stealth.
    ///
    /// # Errors
    ///
    /// Propagates simulation/tangle errors.
    pub fn run_round(&mut self) -> Result<(), CoreError> {
        self.simulation.run_round()?;
        if self.simulation.round() <= self.config.clean_rounds {
            return Ok(());
        }
        for _ in 0..self.config.attacks_per_round {
            let params: Vec<f32> = (0..self.num_parameters)
                .map(|_| {
                    self.attacker_rng
                        .gen_range(-self.config.weight_scale..=self.config.weight_scale)
                })
                .collect();
            let (p1, p2) = {
                let tangle = &self.simulation.tangle;
                let walker = RandomWalker::new();
                let start1 = tangle.sample_walk_start(
                    self.config.dag.walk_depth.0,
                    self.config.dag.walk_depth.1,
                    &mut self.attacker_rng,
                );
                let r1 = walker.walk(tangle, start1, &mut UniformBias, &mut self.attacker_rng)?;
                let start2 = tangle.sample_walk_start(
                    self.config.dag.walk_depth.0,
                    self.config.dag.walk_depth.1,
                    &mut self.attacker_rng,
                );
                let r2 = walker.walk(tangle, start2, &mut UniformBias, &mut self.attacker_rng)?;
                (r1.tip, r2.tip)
            };
            let id = self.simulation.tangle.attach_with_meta(
                ModelPayload::new(params),
                &[p1, p2],
                None,
                self.simulation.round() as u32,
            )?;
            self.garbage.insert(id);
        }
        Ok(())
    }

    /// Runs the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run(&mut self) -> Result<(), CoreError> {
        while self.simulation.round() < self.config.dag.rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// Measures how strongly garbage influences the clients' reference
    /// selection right now.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn measure(&mut self) -> Result<GarbageRoundMetrics, CoreError> {
        let evals = self.simulation.reference_evaluations()?;
        // Materialize a single-owner snapshot once: `past_cone` is an
        // inherent `Tangle` traversal, and payloads are `Arc`-shared so
        // the copy is cheap.
        let tangle = self.simulation.tangle.to_tangle();
        let mut cone_counts = Vec::with_capacity(evals.len());
        let mut garbage_tips = 0usize;
        let mut tips_seen = 0usize;
        for (_, _, (tip1, tip2)) in &evals {
            let mut cone = tangle.past_cone(*tip1)?;
            cone.extend(tangle.past_cone(*tip2)?);
            cone_counts.push(cone.intersection(&self.garbage).count() as f64);
            for tip in [tip1, tip2] {
                tips_seen += 1;
                if self.garbage.contains(tip) {
                    garbage_tips += 1;
                }
            }
        }
        let mean = if cone_counts.is_empty() {
            0.0
        } else {
            cone_counts.iter().sum::<f64>() / cone_counts.len() as f64
        };
        Ok(GarbageRoundMetrics {
            round: self.simulation.round(),
            garbage_in_cone: mean,
            garbage_tip_fraction: if tips_seen == 0 {
                0.0
            } else {
                garbage_tips as f64 / tips_seen as f64
            },
        })
    }
}

impl std::fmt::Debug for GarbageAttackScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarbageAttackScenario")
            .field("round", &self.simulation.round())
            .field("garbage_transactions", &self.garbage.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TipSelector;
    use dagfl_datasets::{fmnist_by_author, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::sync::Arc;

    /// Clean warm-up rounds before the scenario's injections start.
    const CLEAN_ROUNDS: usize = 8;

    /// A *limited-rate* attacker (§4.4): one garbage transaction per round
    /// against ~4–5 benign publications.
    fn scenario(selector: TipSelector) -> GarbageAttackScenario {
        let dataset = fmnist_by_author(&FmnistConfig {
            num_clients: 8,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        });
        GarbageAttackScenario::new(
            GarbageAttackConfig {
                dag: DagConfig {
                    rounds: 18,
                    clients_per_round: 5,
                    local_batches: 4,
                    // Flooding-hardened configuration: the cliff guard
                    // refuses forced steps into flooded regions, and the
                    // best-parent gate never publishes models that only
                    // improved on a contaminated average.
                    walk_stop_margin: Some(0.25),
                    publish_gate: crate::PublishGate::BestParent,
                    ..DagConfig::default()
                }
                .with_tip_selector(selector),
                clean_rounds: CLEAN_ROUNDS,
                attacks_per_round: 1,
                weight_scale: 1.0,
            },
            dataset,
            factory,
        )
    }

    #[test]
    fn garbage_transactions_are_injected_and_tracked() {
        let mut s = scenario(TipSelector::default());
        s.run().unwrap();
        assert_eq!(s.garbage_transactions().len(), 10);
        // All tracked ids exist in the tangle and are anonymous.
        let tangle = s.simulation().tangle();
        for &id in s.garbage_transactions() {
            assert!(tangle.get(id).unwrap().issuer().is_none());
        }
    }

    #[test]
    fn accuracy_bias_avoids_garbage_better_than_random() {
        let mut accuracy = scenario(TipSelector::default());
        accuracy.run().unwrap();
        let acc_m = accuracy.measure().unwrap();
        let mut random = scenario(TipSelector::Random);
        random.run().unwrap();
        let rand_m = random.measure().unwrap();
        // The paper's claim is comparative: random-weight updates have
        // near-chance accuracy, so the biased walk selects them (much)
        // less often than an unbiased one.
        assert!(
            acc_m.garbage_tip_fraction <= rand_m.garbage_tip_fraction,
            "accuracy bias ({}) selected garbage more than random ({})",
            acc_m.garbage_tip_fraction,
            rand_m.garbage_tip_fraction
        );
    }

    #[test]
    fn garbage_does_not_break_training() {
        let mut s = scenario(TipSelector::default());
        s.run().unwrap();
        let history = s.simulation().history();
        // Per-round accuracy is very noisy at this tiny scale (5 clients
        // x 30 local test samples), so judge the whole attack phase
        // rather than the final round: flooding must not drag training
        // back to chance level (0.1 over 10 classes).
        let attack_phase: Vec<f32> = history[CLEAN_ROUNDS..]
            .iter()
            .map(|m| m.mean_accuracy())
            .collect();
        let mean = attack_phase.iter().sum::<f32>() / attack_phase.len() as f32;
        assert!(mean > 0.15, "training collapsed under flooding: {mean}");
    }

    #[test]
    fn measure_reports_cone_counts() {
        let mut s = scenario(TipSelector::Random);
        s.run().unwrap();
        let m = s.measure().unwrap();
        assert!(m.garbage_in_cone >= 0.0);
        assert_eq!(m.round, 18);
    }

    #[test]
    fn no_injection_during_clean_warmup() {
        let mut s = scenario(TipSelector::default());
        for _ in 0..8 {
            s.run_round().unwrap();
        }
        assert!(s.garbage_transactions().is_empty());
        s.run_round().unwrap();
        assert_eq!(s.garbage_transactions().len(), 1);
    }
}
