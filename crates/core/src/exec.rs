//! The shared execution-mode abstraction over the round-based and
//! asynchronous simulators.
//!
//! The paper's algorithm is mode-agnostic — rounds exist only for
//! comparability (§5.3.3) — and so is most analysis code: pureness,
//! client graphs, Louvain partitions and accuracy summaries only need a
//! tangle and a dataset, not a scheduling discipline. [`ExecutionMode`]
//! captures exactly that surface, so experiment harnesses (e.g. the
//! `mode_comparison` binary in `dagfl-bench`) can drive
//! [`Simulation`](crate::Simulation) and
//! [`AsyncSimulation`](crate::AsyncSimulation) through one `dyn`
//! interface and compare them on identical budgets.

use std::ops::Deref;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_datasets::FederatedDataset;
use dagfl_graphs::{louvain, misclassification_fraction, modularity, partition_count, Graph};
use dagfl_tangle::TangleStats;

use crate::{
    AsyncSimulation, CoreError, ShardedModelTangle, Simulation, SpecializationMetrics,
    {approval_pureness_of, client_graph_of},
};

/// A read-only view of a simulator's globally visible tangle.
///
/// Both simulators now own a [`ShardedModelTangle`], whose read path is
/// lock-free, so the view is a plain borrow: deref it to
/// [`ShardedModelTangle`] (or use it through
/// [`dagfl_tangle::TangleRead`]) — no guard is held and the view can be
/// kept for as long as the simulator is borrowed.
pub struct TangleView<'a>(&'a ShardedModelTangle);

impl<'a> TangleView<'a> {
    /// Wraps a borrow of a simulator's tangle.
    pub fn new(tangle: &'a ShardedModelTangle) -> Self {
        Self(tangle)
    }
}

impl Deref for TangleView<'_> {
    type Target = ShardedModelTangle;

    fn deref(&self) -> &ShardedModelTangle {
        self.0
    }
}

/// A simulator that can run a Specializing-DAG workload to completion
/// and expose its tangle for analysis, regardless of whether progress is
/// counted in rounds or in activations.
pub trait ExecutionMode {
    /// Short human-readable mode name (`"rounds"` or `"async"`).
    fn mode_name(&self) -> &'static str;

    /// The federated dataset being trained on.
    fn dataset(&self) -> &FederatedDataset;

    /// Completed scheduling units: rounds for the round simulator,
    /// activations for the asynchronous one.
    fn progress(&self) -> usize;

    /// Runs the configured workload to completion.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    fn run_to_completion(&mut self) -> Result<(), CoreError>;

    /// A read-only view of the globally visible tangle; deref it to
    /// [`ShardedModelTangle`].
    fn tangle_view(&self) -> TangleView<'_>;

    /// Calls `f` with the globally visible tangle.
    ///
    /// Kept for callers written against the original callback shape;
    /// [`ExecutionMode::tangle_view`] is the preferred accessor.
    fn with_tangle(&self, f: &mut dyn FnMut(&ShardedModelTangle)) {
        f(&self.tangle_view());
    }

    /// Mean post-training accuracy over the most recent `n` client
    /// evaluations.
    fn recent_accuracy(&self, n: usize) -> f32;

    /// The derived client graph `G_clients` (§4.3).
    fn client_graph(&self) -> Graph {
        client_graph_of(&*self.tangle_view(), self.dataset().num_clients())
    }

    /// Approval pureness of the visible tangle (Table 2).
    fn approval_pureness(&self) -> f64 {
        approval_pureness_of(&*self.tangle_view(), &self.dataset().cluster_labels())
    }

    /// Structural statistics of the visible tangle.
    fn tangle_stats(&self) -> TangleStats {
        self.tangle_view().stats()
    }

    /// The §4.3 specialization metrics, with Louvain seeded by `seed`
    /// so comparisons across modes stay reproducible.
    fn specialization_metrics_seeded(&self, seed: u64) -> SpecializationMetrics {
        let graph = self.client_graph();
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = louvain(&graph, &mut rng);
        SpecializationMetrics {
            modularity: modularity(&graph, &partition),
            partitions: partition_count(&partition),
            misclassification: misclassification_fraction(
                &partition,
                &self.dataset().cluster_labels(),
            ),
            approval_pureness: self.approval_pureness(),
            partition,
        }
    }
}

impl ExecutionMode for Simulation {
    fn mode_name(&self) -> &'static str {
        "rounds"
    }

    fn dataset(&self) -> &FederatedDataset {
        Simulation::dataset(self)
    }

    fn progress(&self) -> usize {
        self.round()
    }

    fn run_to_completion(&mut self) -> Result<(), CoreError> {
        Simulation::run(self).map(|_| ())
    }

    fn tangle_view(&self) -> TangleView<'_> {
        TangleView::new(self.tangle())
    }

    fn recent_accuracy(&self, n: usize) -> f32 {
        Simulation::recent_accuracy(self, n)
    }
}

impl ExecutionMode for AsyncSimulation {
    fn mode_name(&self) -> &'static str {
        "async"
    }

    fn dataset(&self) -> &FederatedDataset {
        AsyncSimulation::dataset(self)
    }

    fn progress(&self) -> usize {
        self.activations()
    }

    fn run_to_completion(&mut self) -> Result<(), CoreError> {
        AsyncSimulation::run(self)
    }

    fn tangle_view(&self) -> TangleView<'_> {
        TangleView::new(self.tangle())
    }

    fn recent_accuracy(&self, n: usize) -> f32 {
        AsyncSimulation::recent_accuracy(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsyncConfig, DagConfig, DelayModel, ModelFactory};
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::sync::Arc;

    fn dataset() -> FederatedDataset {
        fmnist_clustered(&FmnistConfig {
            num_clients: 6,
            samples_per_client: 40,
            ..FmnistConfig::default()
        })
    }

    fn factory(features: usize) -> ModelFactory {
        Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        })
    }

    fn both_modes() -> Vec<Box<dyn ExecutionMode>> {
        let ds = dataset();
        let features = ds.feature_len();
        let round_sim = Simulation::new(
            DagConfig {
                rounds: 2,
                clients_per_round: 3,
                local_batches: 2,
                ..DagConfig::default()
            },
            ds,
            factory(features),
        );
        let ds = dataset();
        let async_sim = AsyncSimulation::new(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 2,
                    ..DagConfig::default()
                },
                total_activations: 6,
                delay: DelayModel::constant(1.0),
                ..AsyncConfig::default()
            },
            ds,
            factory(features),
        );
        vec![Box::new(round_sim), Box::new(async_sim)]
    }

    #[test]
    fn both_simulators_run_behind_the_trait() {
        for mode in &mut both_modes() {
            mode.run_to_completion().unwrap();
            assert!(mode.progress() > 0, "{} made no progress", mode.mode_name());
            let stats = mode.tangle_stats();
            assert!(stats.transactions >= 1);
            assert!((0.0..=1.0).contains(&mode.approval_pureness()));
            assert!(mode.recent_accuracy(5) > 0.0);
            let spec = mode.specialization_metrics_seeded(7);
            assert_eq!(spec.partition.len(), 6);
        }
    }

    #[test]
    fn mode_names_distinguish_the_simulators() {
        let modes = both_modes();
        assert_eq!(modes[0].mode_name(), "rounds");
        assert_eq!(modes[1].mode_name(), "async");
    }

    #[test]
    fn client_graph_has_dataset_dimensions() {
        for mode in &mut both_modes() {
            mode.run_to_completion().unwrap();
            assert_eq!(mode.client_graph().num_nodes(), 6);
        }
    }

    #[test]
    fn tangle_view_derefs_and_with_tangle_agrees() {
        for mode in &mut both_modes() {
            mode.run_to_completion().unwrap();
            let via_view = mode.tangle_view().len();
            let mut via_callback = 0;
            mode.with_tangle(&mut |t| via_callback = t.len());
            assert_eq!(via_view, via_callback, "{}", mode.mode_name());
            assert!(via_view >= 1);
        }
    }
}
