//! The **Specializing DAG** — implicit model specialization through
//! DAG-based decentralized federated learning.
//!
//! This crate implements the paper's core contribution on top of the
//! workspace substrates ([`dagfl-tangle`] for the ledger, [`dagfl-nn`] for
//! models, [`dagfl-datasets`] for federated data, [`dagfl-graphs`] for the
//! specialization metrics):
//!
//! 1. **Accuracy-aware tip selection** ([`AccuracyBias`] over a
//!    [`ModelEvaluator`]): a biased random walk through the DAG whose
//!    per-step transition weights are `exp(alpha * normalized_accuracy)`
//!    of each candidate model on the client's local test data, with the
//!    paper's simple (Eq. 1–2) and dynamic (Eq. 3) normalizations. The
//!    evaluator owns the scratch model, reusable forward-pass buffers and
//!    a generation-stamped accuracy cache, and reports fresh-vs-cached
//!    evaluation counts.
//! 2. **The client loop** ([`DagClient`]): select two tips, average their
//!    models, train on local data, publish if the model improved.
//! 3. **The round simulator** ([`Simulation`]): discrete rounds with a
//!    configurable number of concurrently active clients (the paper's
//!    simulation methodology, §5.3), per-round metrics, the derived client
//!    graph `G_clients` and the specialization metrics of §4.3.
//! 4. **The asynchronous execution mode** ([`AsyncSimulation`]): the
//!    round-free reality of §5.3.3 as a discrete-event simulation —
//!    per-client tangle replicas, per-link [`DelayModel`]s, compute-speed
//!    heterogeneity ([`ComputeProfile`]), stale-tip handling
//!    ([`StaleTipPolicy`]) and throughput metrics ([`AsyncMetrics`]).
//!    Both simulators share the [`ExecutionMode`] trait, so analysis code
//!    runs against either.
//! 5. **Poisoning scenarios** ([`PoisoningScenario`]): flipped-label
//!    attacks with clean warm-up, mid-run dataset manipulation and the
//!    misprediction / approved-poison metrics of §5.3.4.
//! 6. **The transport seam** ([`Transport`], [`GossipMessage`],
//!    [`Replica`]): every inter-client effect travels as an explicit
//!    message. The deterministic [`LoopbackTransport`] drives the
//!    simulator bit-identically; the std-only [`TcpTransport`] with the
//!    versioned [`wire`] format and tangle snapshot sync drives the real
//!    networked mode behind `dagfl peer` / `dagfl tracker`.
//! 7. **Deterministic fault injection** ([`FaultyTransport`],
//!    [`FaultPlan`]): a transport decorator that drops, duplicates,
//!    reorders and delays deliveries, opens scripted partitions and
//!    crashes peers — all sampled from a seed-derived RNG stream, so
//!    chaos runs are exactly reproducible.
//!
//! # Quickstart
//!
//! ```
//! use dagfl_core::{DagConfig, Simulation};
//! use dagfl_datasets::{fmnist_clustered, FmnistConfig};
//! use dagfl_nn::{Dense, Model, Relu, Sequential};
//!
//! # fn main() -> Result<(), dagfl_core::CoreError> {
//! let dataset = fmnist_clustered(&FmnistConfig {
//!     num_clients: 6,
//!     samples_per_client: 30,
//!     ..FmnistConfig::default()
//! });
//! let config = DagConfig {
//!     rounds: 2,
//!     clients_per_round: 3,
//!     local_batches: 2,
//!     ..DagConfig::default()
//! };
//! let features = dataset.feature_len();
//! let mut sim = Simulation::new(config, dataset, std::sync::Arc::new(move |rng| {
//!     Box::new(Sequential::new(vec![
//!         Box::new(Dense::new(rng, features, 16)),
//!         Box::new(Relu::new()),
//!         Box::new(Dense::new(rng, 16, 10)),
//!     ])) as Box<dyn Model>
//! }));
//! let metrics = sim.run()?;
//! assert_eq!(metrics.len(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! [`dagfl-tangle`]: ../dagfl_tangle/index.html
//! [`dagfl-nn`]: ../dagfl_nn/index.html
//! [`dagfl-datasets`]: ../dagfl_datasets/index.html
//! [`dagfl-graphs`]: ../dagfl_graphs/index.html

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
mod async_sim;
mod attackers;
mod client;
mod config;
pub mod csv;
mod delay;
mod error;
mod evaluator;
mod exec;
mod fault;
mod metrics;
mod net;
mod payload;
mod peer;
mod poisoning;
mod replica;
mod seed;
mod simulation;
mod tip_selection;
mod transport;
pub mod wire;

pub use async_sim::{ActivationRecord, AsyncConfig, AsyncMetrics, AsyncSimulation};
pub use attackers::{GarbageAttackConfig, GarbageAttackScenario, GarbageRoundMetrics};
pub use client::{DagClient, TrainOutcome};
pub use config::{DagConfig, Hyperparameters, Normalization, PublishGate, TipSelector};
pub use delay::{ComputeProfile, DelayModel, StaleTipPolicy};
pub use error::CoreError;
pub use evaluator::{EvalCounters, ModelEvaluator};
pub use exec::{ExecutionMode, TangleView};
pub use fault::{CrashWindow, FaultPlan, FaultyTransport, PartitionWindow, FAULT_STREAM};
pub use metrics::{
    approval_pureness_of, client_graph_of, tangle_digest, ClientGraphTracker, RoundMetrics,
    SpecializationMetrics,
};
pub use net::{
    have_set, tracker_join, tracker_leave, ControlEvent, TcpTransport, Tracker, TrackerSummary,
};
pub use payload::{
    perturbed_model_tangle, ModelFactory, ModelPayload, ModelTangle, ShardedModelTangle,
    SharedModelTangle,
};
pub use peer::{run_peer, PeerConfig, PeerReport};
pub use poisoning::{mean_accuracy_series, PoisonRoundMetrics, PoisoningConfig, PoisoningScenario};
pub use replica::{Replica, ReplicaTangle, SegmentRegistry, GENESIS_NET_ID};
pub use seed::derive_seed;
pub use simulation::{ReferenceEvaluation, Simulation};
pub use tip_selection::AccuracyBias;
pub use transport::{
    Envelope, GossipMessage, LoopbackTransport, Transport, TransportStats, TxMessage,
};
pub use wire::{PeerInfo, WireError, WireMessage};
