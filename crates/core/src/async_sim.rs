//! Event-driven asynchronous simulation.
//!
//! The Specializing DAG needs no rounds: "in a distributed implementation,
//! each client continuously runs the training process as often as its
//! resources permit, independent from all other clients. We only introduce
//! the concept of rounds to be able to compare" (§5.3.3). This simulator
//! drops the rounds: client activations arrive as a Poisson-style process
//! on a logical clock, each activation works against the tangle *as
//! currently visible to that client*, and published transactions only
//! become visible to others after a configurable propagation delay —
//! modelling the eventual broadcast of a real peer-to-peer network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_datasets::FederatedDataset;
use dagfl_graphs::Graph;
use dagfl_tangle::{Tangle, TxId};

use crate::{CoreError, DagClient, DagConfig, ModelFactory, ModelPayload, ModelTangle};

/// Configuration of an asynchronous simulation.
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Hyperparameters, tip selection and seed (the `rounds`,
    /// `clients_per_round` and `parallel` fields are ignored).
    pub dag: DagConfig,
    /// Total client activations to simulate.
    pub total_activations: usize,
    /// Mean logical time between consecutive activations (exponential
    /// inter-arrival).
    pub mean_interarrival: f64,
    /// Logical delay until a published transaction becomes visible to
    /// other clients (0.0 = instantaneous broadcast).
    pub visibility_delay: f64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self {
            dag: DagConfig::default(),
            total_activations: 1000,
            mean_interarrival: 1.0,
            visibility_delay: 2.0,
        }
    }
}

/// One completed client activation.
#[derive(Debug, Clone)]
pub struct ActivationRecord {
    /// Logical time of the activation.
    pub time: f64,
    /// The activated client.
    pub client: u32,
    /// Post-training accuracy on the client's local test data.
    pub accuracy: f32,
    /// Whether the activation published a transaction.
    pub published: bool,
}

/// A transaction that has been published but is still propagating.
#[derive(Debug)]
struct InFlight {
    visible_at: f64,
    params: Vec<f32>,
    parents: (TxId, TxId),
    issuer: u32,
}

/// The asynchronous, event-driven counterpart of
/// [`Simulation`](crate::Simulation).
pub struct AsyncSimulation {
    config: AsyncConfig,
    dataset: FederatedDataset,
    tangle: ModelTangle,
    clients: Vec<DagClient>,
    in_flight: Vec<InFlight>,
    clock: f64,
    activations: usize,
    rng: StdRng,
    history: Vec<ActivationRecord>,
}

impl AsyncSimulation {
    /// Creates an asynchronous simulation (genesis model from `factory`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no clients or `mean_interarrival` is not
    /// positive.
    pub fn new(config: AsyncConfig, dataset: FederatedDataset, factory: ModelFactory) -> Self {
        assert!(dataset.num_clients() > 0, "dataset has no clients");
        assert!(
            config.mean_interarrival > 0.0 && config.mean_interarrival.is_finite(),
            "mean inter-arrival time must be positive"
        );
        assert!(
            config.visibility_delay >= 0.0 && config.visibility_delay.is_finite(),
            "visibility delay must be non-negative"
        );
        let mut rng = StdRng::seed_from_u64(config.dag.seed ^ 0xA57C);
        let genesis_model = factory(&mut rng);
        let tangle = Tangle::new(ModelPayload::new(genesis_model.parameters()));
        let clients = (0..dataset.num_clients() as u32)
            .map(|id| {
                DagClient::new(
                    id,
                    factory(&mut rng),
                    config.dag.seed.wrapping_add(id as u64),
                )
            })
            .collect();
        Self {
            config,
            dataset,
            tangle,
            clients,
            in_flight: Vec::new(),
            clock: 0.0,
            activations: 0,
            rng,
            history: Vec::new(),
        }
    }

    /// The logical clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Activations processed so far.
    pub fn activations(&self) -> usize {
        self.activations
    }

    /// The visible tangle (excluding in-flight transactions).
    pub fn tangle(&self) -> &ModelTangle {
        &self.tangle
    }

    /// Transactions currently propagating (published, not yet visible).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The activation log.
    pub fn history(&self) -> &[ActivationRecord] {
        &self.history
    }

    /// The dataset being trained on.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// Samples an exponential inter-arrival time (inverse transform).
    fn sample_interarrival(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * self.config.mean_interarrival
    }

    /// Attaches every in-flight transaction whose propagation finished.
    fn deliver_due(&mut self) -> Result<(), CoreError> {
        // Deliver in visible_at order for determinism.
        self.in_flight.sort_by(|a, b| {
            a.visible_at
                .partial_cmp(&b.visible_at)
                .expect("finite times")
        });
        let mut remaining = Vec::new();
        for tx in self.in_flight.drain(..) {
            if tx.visible_at <= self.clock {
                self.tangle.attach_with_meta(
                    ModelPayload::new(tx.params),
                    &[tx.parents.0, tx.parents.1],
                    Some(tx.issuer),
                    // Record the delivery time (coarsened) in the round
                    // field for later analysis.
                    tx.visible_at as u32,
                )?;
            } else {
                remaining.push(tx);
            }
        }
        self.in_flight = remaining;
        Ok(())
    }

    /// Processes one activation: advance the clock, deliver due
    /// transactions, let a uniformly chosen client train and (maybe)
    /// publish.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn step(&mut self) -> Result<ActivationRecord, CoreError> {
        self.clock += self.sample_interarrival();
        self.deliver_due()?;
        let idx = self.rng.gen_range(0..self.dataset.num_clients());
        let data = &self.dataset.clients()[idx];
        let client = &mut self.clients[idx];
        let outcome = client.train_round(&self.tangle, data, &self.config.dag)?;
        let published = outcome.published.is_some();
        if let Some(params) = outcome.published {
            self.in_flight.push(InFlight {
                visible_at: self.clock + self.config.visibility_delay,
                params,
                parents: outcome.parents,
                issuer: outcome.client,
            });
        }
        let record = ActivationRecord {
            time: self.clock,
            client: outcome.client,
            accuracy: outcome.trained.accuracy,
            published,
        };
        self.history.push(record.clone());
        self.activations += 1;
        Ok(record)
    }

    /// Runs until `total_activations` activations have been processed,
    /// then flushes the remaining in-flight transactions.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn run(&mut self) -> Result<(), CoreError> {
        while self.activations < self.config.total_activations {
            self.step()?;
        }
        // Let the network quiesce: advance the clock past every pending
        // delivery.
        self.clock += self.config.visibility_delay;
        self.deliver_due()?;
        Ok(())
    }

    /// The derived client graph of the visible tangle (§4.3).
    pub fn client_graph(&self) -> Graph {
        crate::client_graph_of(&self.tangle, self.dataset.num_clients())
    }

    /// Approval pureness of the visible tangle (Table 2).
    pub fn approval_pureness(&self) -> f64 {
        crate::approval_pureness_of(&self.tangle, &self.dataset.cluster_labels())
    }

    /// Mean accuracy over the last `n` activations.
    pub fn recent_accuracy(&self, n: usize) -> f32 {
        let take = n.min(self.history.len());
        if take == 0 {
            return 0.0;
        }
        self.history[self.history.len() - take..]
            .iter()
            .map(|r| r.accuracy)
            .sum::<f32>()
            / take as f32
    }
}

impl std::fmt::Debug for AsyncSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSimulation")
            .field("clock", &self.clock)
            .field("activations", &self.activations)
            .field("transactions", &self.tangle.len())
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::sync::Arc;

    fn setup(total: usize, visibility_delay: f64) -> AsyncSimulation {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 6,
            samples_per_client: 50,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        });
        AsyncSimulation::new(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    ..DagConfig::default()
                },
                total_activations: total,
                mean_interarrival: 1.0,
                visibility_delay,
            },
            dataset,
            factory,
        )
    }

    #[test]
    fn activations_advance_clock_and_tangle() {
        let mut sim = setup(30, 2.0);
        sim.run().unwrap();
        assert_eq!(sim.activations(), 30);
        assert!(sim.clock() > 0.0);
        assert!(sim.tangle().len() > 1, "nothing was published");
        assert_eq!(sim.history().len(), 30);
        assert_eq!(sim.in_flight(), 0, "run() must flush in-flight txs");
    }

    #[test]
    fn visibility_delay_creates_wider_frontiers() {
        let mut instant = setup(60, 0.0);
        instant.run().unwrap();
        let mut delayed = setup(60, 10.0);
        delayed.run().unwrap();
        // With a large propagation delay, concurrent publications cannot
        // see each other and attach to older parents, widening the DAG.
        let instant_tips = instant.tangle().stats().tips;
        let delayed_tips = delayed.tangle().stats().tips;
        assert!(
            delayed_tips >= instant_tips,
            "delay should widen the frontier: {instant_tips} vs {delayed_tips}"
        );
    }

    #[test]
    fn accuracy_improves_over_activations() {
        let mut sim = setup(80, 1.0);
        sim.run().unwrap();
        let early: f32 = sim.history()[..10].iter().map(|r| r.accuracy).sum::<f32>() / 10.0;
        let late = sim.recent_accuracy(10);
        assert!(
            late > early,
            "no progress under asynchrony: {early} -> {late}"
        );
    }

    #[test]
    fn specialization_emerges_without_rounds() {
        let mut sim = setup(80, 1.0);
        sim.run().unwrap();
        let pureness = sim.approval_pureness();
        let base = sim.dataset().base_pureness();
        assert!(pureness > base, "pureness {pureness} not above base {base}");
        assert!(sim.client_graph().total_weight() > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = setup(25, 2.0);
        a.run().unwrap();
        let mut b = setup(25, 2.0);
        b.run().unwrap();
        assert_eq!(a.tangle().len(), b.tangle().len());
        assert_eq!(a.clock(), b.clock());
        let acc_a: Vec<f32> = a.history().iter().map(|r| r.accuracy).collect();
        let acc_b: Vec<f32> = b.history().iter().map(|r| r.accuracy).collect();
        assert_eq!(acc_a, acc_b);
    }

    #[test]
    fn recent_accuracy_handles_short_history() {
        let sim = setup(10, 1.0);
        assert_eq!(sim.recent_accuracy(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "inter-arrival")]
    fn zero_interarrival_panics() {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 3,
            samples_per_client: 30,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let factory: ModelFactory = Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![Box::new(Dense::new(
                rng, features, 10,
            ))])) as Box<dyn Model>
        });
        AsyncSimulation::new(
            AsyncConfig {
                mean_interarrival: 0.0,
                ..AsyncConfig::default()
            },
            dataset,
            factory,
        );
    }
}
