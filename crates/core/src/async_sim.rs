//! The asynchronous execution mode: an event-driven simulation of the
//! Specializing DAG over a heterogeneous peer-to-peer network.
//!
//! The paper is explicit that rounds are a measurement fiction: "in a
//! distributed implementation, each client continuously runs the training
//! process as often as its resources permit, independent from all other
//! clients. We only introduce the concept of rounds to be able to compare"
//! (§5.3.3). This simulator drops the rounds entirely and models what the
//! round simulator abstracts away:
//!
//! * **Message-passing replicas.** Every client maintains its own
//!   [`Replica`] of the tangle, exactly like a node in a real gossip
//!   network, and *all* inter-client effects travel as
//!   [`GossipMessage`]s through a [`Transport`]: a publication is
//!   broadcast once, reaches each peer individually after a per-link
//!   delay drawn from the configured [`DelayModel`], and out-of-order
//!   arrivals wait in the replica's solidification buffer until their
//!   parents are known. Model payloads are `Arc`-shared, so replicas
//!   cost edges, not weights. The default [`LoopbackTransport`] keeps
//!   everything in-process and deterministic; the same seam carries a
//!   real network in `dagfl peer`.
//! * **Poisson activations with compute heterogeneity.** Each client
//!   activates on its own exponential clock whose rate is scaled by its
//!   [`ComputeProfile`] speed factor, and training occupies
//!   `train_time / speed` logical time during which the client's view
//!   keeps receiving deliveries.
//! * **Stale-tip handling.** Because training takes time, a selected tip
//!   may have been superseded (approved by somebody else) by the time the
//!   client is ready to publish. The [`StaleTipPolicy`] decides whether to
//!   publish anyway, re-select and re-validate, or discard.
//! * **Throughput metrics.** [`AsyncMetrics`] records activation rate,
//!   publish latency, tip-staleness counts and confirmation depth — the
//!   quantities that distinguish deployable designs beyond accuracy.
//!
//! The simulation is a deterministic discrete-event loop: a single seeded
//! RNG drives all sampling (the loopback transport samples its link
//! delays from the same stream, in fixed peer order), and events are
//! totally ordered by `(time, sequence number)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_datasets::FederatedDataset;
use dagfl_graphs::Graph;
use dagfl_nn::average_parameters;
use dagfl_tangle::{TangleRead, TxId};

use crate::{
    ClientGraphTracker, ComputeProfile, CoreError, DagClient, DagConfig, DelayModel, Envelope,
    FaultPlan, FaultyTransport, GossipMessage, LoopbackTransport, ModelFactory, ModelPayload,
    Replica, ReplicaTangle, SegmentRegistry, ShardedModelTangle, StaleTipPolicy, TrainOutcome,
    Transport, TxMessage,
};

/// Configuration of an asynchronous simulation.
///
/// # Example
///
/// ```
/// use dagfl_core::{AsyncConfig, ComputeProfile, DelayModel, StaleTipPolicy};
///
/// let config = AsyncConfig {
///     total_activations: 500,
///     mean_interarrival: 1.0,
///     delay: DelayModel::Cohorts {
///         slow_fraction: 0.3,
///         fast: 1.0,
///         slow: 8.0,
///         jitter: 1.0,
///     },
///     compute: ComputeProfile::TwoSpeed {
///         slow_fraction: 0.3,
///         slowdown: 4.0,
///     },
///     train_time: 0.5,
///     stale_policy: StaleTipPolicy::Reselect,
///     ..AsyncConfig::default()
/// };
/// assert_eq!(config.total_activations, 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Hyperparameters, tip selection and seed (the `rounds`,
    /// `clients_per_round` and `parallel` fields are ignored).
    pub dag: DagConfig,
    /// Total client activations to simulate.
    pub total_activations: usize,
    /// Mean logical time between consecutive activations *of one
    /// speed-1.0 client*; a client with speed `s` activates with mean
    /// inter-arrival `mean_interarrival / s`.
    pub mean_interarrival: f64,
    /// Per-link propagation delay of published transactions.
    pub delay: DelayModel,
    /// Per-client compute-speed factors.
    pub compute: ComputeProfile,
    /// Logical duration of one local-training pass at speed 1.0
    /// (`0.0` = instantaneous training, the historical behaviour; tips
    /// can only go stale when this is positive).
    pub train_time: f64,
    /// What to do when a selected tip was superseded during training.
    pub stale_policy: StaleTipPolicy,
    /// Receivers per broadcast: `0` (or anything at least the peer
    /// count minus one) gossips to everyone; a smaller value samples
    /// that many peers per publication — deterministically, from the
    /// simulation's RNG stream.
    pub gossip_fanout: usize,
    /// Worker threads training concurrently activated clients (`1` =
    /// serial). Which activations train together is decided by event
    /// times alone, never by thread timing, so results are
    /// byte-identical at any worker count.
    pub workers: usize,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        Self {
            dag: DagConfig::default(),
            total_activations: 1000,
            mean_interarrival: 1.0,
            delay: DelayModel::default(),
            compute: ComputeProfile::default(),
            train_time: 0.0,
            stale_policy: StaleTipPolicy::default(),
            gossip_fanout: 0,
            workers: 1,
        }
    }
}

impl AsyncConfig {
    /// Checks every field, including the embedded [`DagConfig`] and the
    /// delay/compute models — the same ranges `dagfl async` enforces, so
    /// programmatic users get identical errors. The `dag` fields this
    /// mode ignores (`rounds`, `clients_per_round`, `parallel`) are
    /// exempt.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] naming the first offending
    /// field.
    ///
    /// # Example
    ///
    /// ```
    /// use dagfl_core::AsyncConfig;
    ///
    /// assert!(AsyncConfig::default().validate().is_ok());
    /// let bad = AsyncConfig {
    ///     mean_interarrival: 0.0,
    ///     ..AsyncConfig::default()
    /// };
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), CoreError> {
        // Neutralise the round-scheduling fields before delegating: this
        // mode documents them as ignored, so they must not fail a config
        // that would run fine.
        DagConfig {
            rounds: self.dag.rounds.max(1),
            clients_per_round: self.dag.clients_per_round.max(1),
            ..self.dag
        }
        .validate()?;
        if self.total_activations == 0 {
            return Err(CoreError::invalid_field(
                "total_activations",
                self.total_activations,
                "must be at least 1",
            ));
        }
        if !(self.mean_interarrival > 0.0 && self.mean_interarrival.is_finite()) {
            return Err(CoreError::invalid_field(
                "mean_interarrival",
                self.mean_interarrival,
                "must be positive and finite",
            ));
        }
        if !(self.train_time >= 0.0 && self.train_time.is_finite()) {
            return Err(CoreError::invalid_field(
                "train_time",
                self.train_time,
                "must be non-negative and finite",
            ));
        }
        if self.workers == 0 {
            return Err(CoreError::invalid_field(
                "workers",
                self.workers,
                "must be at least 1",
            ));
        }
        self.delay.validate()?;
        self.compute.validate()
    }
}

/// One completed client activation.
#[derive(Debug, Clone)]
pub struct ActivationRecord {
    /// Logical time at which the client started (tip selection).
    pub started: f64,
    /// Logical time at which training finished and the publish decision
    /// was taken.
    pub completed: f64,
    /// The activated client.
    pub client: u32,
    /// Post-training accuracy on the client's local test data.
    pub accuracy: f32,
    /// Whether the activation published a transaction.
    pub published: bool,
    /// How many of the originally selected parents (0–2) had been
    /// superseded by the time training finished.
    pub stale_parents: usize,
    /// Whether the stale policy re-selected fresh parents and the
    /// publication was attached to them (re-validation succeeded).
    pub reselected: bool,
}

/// Throughput and staleness metrics of an asynchronous run — the
/// deployment-facing counterpart of the accuracy curves.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncMetrics {
    /// Completed activations.
    pub activations: usize,
    /// Transactions published (excluding the genesis).
    pub publications: usize,
    /// Publications dropped by [`StaleTipPolicy::Discard`].
    pub discarded_stale: usize,
    /// Publications that went through a [`StaleTipPolicy::Reselect`]
    /// re-walk (whether or not they survived re-validation).
    pub reselections: usize,
    /// Final logical clock.
    pub elapsed: f64,
    /// Mean per-link delivery delay over all publications (logical
    /// time from publish to visibility at a peer).
    pub mean_publish_latency: f64,
    /// Largest sampled per-link delivery delay.
    pub max_publish_latency: f64,
    /// Publications by number of stale parents *approved* (index 0, 1,
    /// 2): a successful re-selection attaches to fresh tips and counts
    /// in bucket 0 regardless of how stale the original selection was.
    pub staleness_histogram: [usize; 3],
    /// Mean depth-from-tips over the global tangle — how deeply the
    /// average transaction is buried (its degree of confirmation).
    pub mean_confirmation_depth: f64,
    /// Tips of the global tangle at measurement time.
    pub tips: usize,
    /// Transactions in the global tangle, including the genesis.
    pub transactions: usize,
    /// Candidate evaluations that ran a real forward pass (walks,
    /// publish gates and stale-tip re-selections of every client).
    pub fresh_evaluations: usize,
    /// Candidate evaluations answered from per-client accuracy caches.
    pub cached_evaluations: usize,
    /// Envelopes the transport handed to a receiver.
    pub delivered: usize,
    /// Envelopes lost before delivery (zero without fault injection).
    pub dropped: usize,
    /// Extra copies created by duplication faults (zero without fault
    /// injection).
    pub duplicated: usize,
}

impl AsyncMetrics {
    /// Completed activations per unit of logical time.
    pub fn activation_rate(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.activations as f64 / self.elapsed
        } else {
            0.0
        }
    }

    /// Fraction of activations that resulted in a publication.
    pub fn publish_fraction(&self) -> f64 {
        if self.activations > 0 {
            self.publications as f64 / self.activations as f64
        } else {
            0.0
        }
    }

    /// Fraction of candidate evaluations that were fresh (forward
    /// passes) rather than cache hits; `0.0` when nothing was evaluated.
    pub fn fresh_eval_ratio(&self) -> f64 {
        crate::EvalCounters {
            fresh: self.fresh_evaluations,
            cached: self.cached_evaluations,
        }
        .fresh_ratio()
    }

    /// Fraction of publications that approved at least one stale
    /// (already superseded) parent.
    pub fn stale_fraction(&self) -> f64 {
        let stale: usize = self.staleness_histogram[1] + self.staleness_histogram[2];
        let total: usize = self.staleness_histogram.iter().sum();
        if total > 0 {
            stale as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// A discrete event: a client starting an activation or finishing one.
#[derive(Debug)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// Select tips and train against the client's current view.
    Activate(usize),
    /// Training done: staleness check, publish decision, reschedule.
    Finish(usize),
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time.total_cmp(&other.time).is_eq()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// An activation whose training is still in progress.
struct PendingActivation {
    started: f64,
    outcome: TrainOutcome,
}

/// The asynchronous, event-driven counterpart of
/// [`Simulation`](crate::Simulation).
///
/// Every inter-client effect is a message: when a client publishes, the
/// transaction is broadcast through the [`Transport`] as a
/// [`GossipMessage`], and each peer's [`Replica`] attaches it only when
/// the delivery arrives (and its parents are solid). The simulator
/// additionally keeps one omniscient *global* tangle — every
/// publication is attached there immediately, for analysis only; no
/// client ever reads from it. Clients always select tips and train
/// against their own replica.
///
/// With the default [`LoopbackTransport`] the whole exchange stays
/// in-process and deterministic; `dagfl peer` runs the same replica
/// machinery over TCP.
pub struct AsyncSimulation {
    config: AsyncConfig,
    dataset: FederatedDataset,
    global: ShardedModelTangle,
    /// Incrementally maintained client graph and pureness counters.
    graph: ClientGraphTracker,
    /// Network id (dense, loopback) → id in the global tangle.
    net_to_global: Vec<TxId>,
    clients: Vec<DagClient>,
    replicas: Vec<Replica>,
    transport: Box<dyn Transport>,
    speeds: Vec<f64>,
    slow_cohort: Vec<bool>,
    pending: Vec<Option<PendingActivation>>,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    clock: f64,
    activations: usize,
    publications: usize,
    discarded_stale: usize,
    reselections: usize,
    staleness_histogram: [usize; 3],
    rng: StdRng,
    history: Vec<ActivationRecord>,
}

impl AsyncSimulation {
    /// Creates an asynchronous simulation (genesis model from `factory`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no clients or the configuration fails
    /// [`AsyncConfig::validate`] (use [`AsyncSimulation::try_new`] to
    /// get a `Result` instead).
    pub fn new(config: AsyncConfig, dataset: FederatedDataset, factory: ModelFactory) -> Self {
        assert!(dataset.num_clients() > 0, "dataset has no clients");
        match Self::try_new(config, dataset, factory) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid async configuration: {e}"),
        }
    }

    /// Creates an asynchronous simulation, reporting configuration
    /// problems as values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] if the dataset has no
    /// clients or any configuration field fails
    /// [`AsyncConfig::validate`].
    pub fn try_new(
        config: AsyncConfig,
        dataset: FederatedDataset,
        factory: ModelFactory,
    ) -> Result<Self, CoreError> {
        Self::try_new_with_faults(config, dataset, factory, FaultPlan::default())
    }

    /// Creates an asynchronous simulation whose loopback transport is
    /// wrapped in a [`FaultyTransport`] running `plan`. An inert plan
    /// (the default) skips the decorator entirely, so this is exactly
    /// [`AsyncSimulation::try_new`] — same structure, same RNG stream,
    /// bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidField`] if the dataset has no
    /// clients or any configuration or fault-plan field is invalid.
    pub fn try_new_with_faults(
        config: AsyncConfig,
        dataset: FederatedDataset,
        factory: ModelFactory,
        plan: FaultPlan,
    ) -> Result<Self, CoreError> {
        if dataset.num_clients() == 0 {
            return Err(CoreError::invalid_field(
                "dataset.num_clients",
                0,
                "dataset has no clients",
            ));
        }
        config.validate()?;
        plan.validate()?;
        let mut rng = StdRng::seed_from_u64(config.dag.seed ^ 0xA57C);
        let genesis_model = factory(&mut rng);
        let genesis = ModelPayload::new(genesis_model.parameters());
        let n = dataset.num_clients();
        let clients = (0..n as u32)
            .map(|id| {
                DagClient::new(
                    id,
                    factory(&mut rng),
                    config.dag.seed.wrapping_add(id as u64),
                )
            })
            .collect();
        // All replicas share one record store: a transaction gossiped to
        // every peer is materialized once, not once per replica.
        let registry = SegmentRegistry::new();
        let replicas = (0..n)
            .map(|_| Replica::with_registry(genesis.clone(), registry.clone()))
            .collect();
        let slow_cohort = config.delay.assign_cohorts(n, &mut rng);
        let speeds = config.compute.speeds(&slow_cohort, &mut rng);
        let loopback = LoopbackTransport::new(config.delay, slow_cohort.clone())
            .with_fanout(config.gossip_fanout);
        // An inert plan skips the decorator: fault-free simulations
        // are structurally identical to pre-fault builds.
        let transport: Box<dyn Transport> = if plan.is_inert() {
            Box::new(loopback)
        } else {
            Box::new(FaultyTransport::new(loopback, plan, config.dag.seed))
        };
        let global = ShardedModelTangle::new(genesis);
        let graph = ClientGraphTracker::new(dataset.cluster_labels());
        let mut sim = Self {
            config,
            dataset,
            net_to_global: vec![global.genesis()],
            global,
            graph,
            clients,
            replicas,
            transport,
            speeds,
            slow_cohort,
            pending: (0..n).map(|_| None).collect(),
            events: BinaryHeap::new(),
            next_seq: 0,
            clock: 0.0,
            activations: 0,
            publications: 0,
            discarded_stale: 0,
            reselections: 0,
            staleness_histogram: [0; 3],
            rng,
            history: Vec::new(),
        };
        // Every client's first activation arrives on its own Poisson clock.
        for idx in 0..n {
            let gap = sim.sample_interarrival(idx);
            sim.schedule(gap, EventKind::Activate(idx));
        }
        Ok(sim)
    }

    /// The logical clock (time of the last processed event).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Completed activations so far.
    pub fn activations(&self) -> usize {
        self.activations
    }

    /// The omniscient global tangle containing every publication.
    pub fn tangle(&self) -> &ShardedModelTangle {
        &self.global
    }

    /// One client's current replica of the tangle (its network view).
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn replica(&self, client: usize) -> &ReplicaTangle {
        self.replicas[client].tangle()
    }

    /// Deliveries that have not reached their destination replica yet:
    /// envelopes scheduled beyond the current clock, plus due arrivals
    /// still waiting in the solidification buffer for a parent.
    /// (Arrivals that are due and solid but unobserved — the receiver
    /// has not activated since — do not count; they are delivered,
    /// merely unread.)
    pub fn pending_deliveries(&self) -> usize {
        self.replicas
            .iter()
            .enumerate()
            .map(|(peer, replica)| replica.backlog(self.transport.in_flight(peer), self.clock))
            .sum()
    }

    /// Order-independent digest of one client's replica (equal digests
    /// mean equal transaction sets) — the loopback counterpart of the
    /// digest `dagfl peer` prints at exit.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn replica_digest(&self, client: usize) -> u64 {
        self.replicas[client].digest()
    }

    /// The transport's delivery accounting so far.
    pub fn transport_stats(&self) -> crate::TransportStats {
        self.transport.stats()
    }

    /// Anti-entropy after a faulted run: flushes every in-flight
    /// envelope, then lets each replica pull every transaction it is
    /// missing from each other replica as a snapshot batch, to a
    /// fixpoint. This is the loopback analogue of the networked
    /// `SnapshotRequest`/`delta_since` rejoin — after it, all replica
    /// digests agree unless a transaction was lost from *every*
    /// replica (impossible: the publisher always holds its own).
    ///
    /// Partitions heal on their own (held envelopes arrive at the heal
    /// time); dropped and crash-lost deliveries do not, which is what
    /// this repairs.
    pub fn reconcile_replicas(&mut self) {
        for idx in 0..self.replicas.len() {
            let due = self.transport.receive(idx, f64::INFINITY);
            self.replicas[idx].apply(due);
        }
        loop {
            let mut changed = false;
            for i in 0..self.replicas.len() {
                for j in 0..self.replicas.len() {
                    if i == j {
                        continue;
                    }
                    let have: std::collections::HashSet<u64> =
                        self.replicas[i].network_ids().iter().copied().collect();
                    let missing = self.replicas[j].snapshot_messages(&have);
                    if missing.is_empty() {
                        continue;
                    }
                    let before = self.replicas[i].tangle().len();
                    self.replicas[i].apply(vec![Envelope {
                        at: self.clock,
                        message: GossipMessage::Snapshot(missing),
                    }]);
                    if self.replicas[i].tangle().len() != before {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The per-client compute-speed factors sampled at construction.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The per-client network slow-cohort flags sampled at
    /// construction (`true` = slow links; all `false` unless the delay
    /// model is [`DelayModel::Cohorts`]).
    pub fn slow_clients(&self) -> &[bool] {
        &self.slow_cohort
    }

    /// The activation log.
    pub fn history(&self) -> &[ActivationRecord] {
        &self.history
    }

    /// The dataset being trained on.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// The simulation configuration.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// A snapshot of the throughput/staleness metrics (confirmation
    /// depth and tip counts are computed from the global tangle,
    /// latency from the transport's accounting).
    pub fn metrics(&self) -> AsyncMetrics {
        let depths = self.global.depths_from_tips();
        let mean_depth = if depths.is_empty() {
            0.0
        } else {
            depths.iter().map(|&d| d as f64).sum::<f64>() / depths.len() as f64
        };
        let stats = self.global.stats();
        let transport = self.transport.stats();
        // Evaluation counters live on the per-client evaluators, so the
        // totals cover walks, publish gates and stale-tip re-selections
        // alike.
        let (fresh, cached) = self
            .clients
            .iter()
            .map(|c| c.eval_counters())
            .fold((0, 0), |(f, c), k| (f + k.fresh, c + k.cached));
        AsyncMetrics {
            activations: self.activations,
            publications: self.publications,
            discarded_stale: self.discarded_stale,
            reselections: self.reselections,
            elapsed: self.clock,
            mean_publish_latency: transport.mean_latency(),
            max_publish_latency: transport.latency_max,
            staleness_histogram: self.staleness_histogram,
            mean_confirmation_depth: mean_depth,
            tips: stats.tips,
            transactions: stats.transactions,
            fresh_evaluations: fresh,
            cached_evaluations: cached,
            delivered: transport.delivered,
            dropped: transport.dropped,
            duplicated: transport.duplicated,
        }
    }

    fn schedule(&mut self, at: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event {
            time: at,
            seq,
            kind,
        }));
    }

    /// Samples the next exponential activation gap of one client
    /// (inverse transform, rate scaled by the client's speed).
    fn sample_interarrival(&mut self, client: usize) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * self.config.mean_interarrival / self.speeds[client]
    }

    /// Receives this client's due deliveries from the transport and
    /// applies them to its replica (solidification included).
    fn deliver(&mut self, idx: usize, now: f64) {
        let due = self.transport.receive(idx, now);
        self.replicas[idx].apply(due);
    }

    /// Pops the maximal batch of activations that may train together
    /// without changing the serial event order: a run of consecutive
    /// `Activate` events from the top of the heap, stopping at the
    /// first `Finish` and at any activation later than the earliest
    /// training-finish time of the batch collected so far (a serial
    /// loop would process that finish — and its publication — first).
    /// Ties are safe to include: an already-queued activation always
    /// carries a smaller sequence number than a finish scheduled now,
    /// so at equal times the serial loop pops the activation first.
    ///
    /// Each client has at most one outstanding activation, so a batch
    /// never contains the same client twice.
    fn pop_activation_batch(&mut self) -> Vec<(usize, f64)> {
        let mut batch: Vec<(usize, f64)> = Vec::new();
        let mut barrier = f64::INFINITY;
        while let Some(Reverse(top)) = self.events.peek() {
            let idx = match top.kind {
                EventKind::Activate(idx) => idx,
                EventKind::Finish(_) => break,
            };
            let time = top.time;
            if time > barrier {
                break;
            }
            self.events.pop();
            barrier = barrier.min(time + self.config.train_time / self.speeds[idx]);
            batch.push((idx, time));
        }
        batch
    }

    /// Starts a batch of activations: deliver each client's gossip in
    /// event order, select tips and train every client against its own
    /// replica (in parallel across `workers` threads), then schedule
    /// the finish events in batch order — the same sequence numbers a
    /// serial loop would assign.
    fn process_activation_batch(&mut self, batch: &[(usize, f64)]) -> Result<(), CoreError> {
        // Deliveries mutate per-client replicas and the (stateful)
        // transport, so they stay serial, in event order.
        for &(idx, at) in batch {
            self.clock = at;
            self.deliver(idx, at);
        }
        let outcomes = self.train_batch(batch);
        for (&(idx, at), outcome) in batch.iter().zip(outcomes) {
            let outcome = outcome?;
            let duration = self.config.train_time / self.speeds[idx];
            self.pending[idx] = Some(PendingActivation {
                started: at,
                outcome,
            });
            self.schedule(at + duration, EventKind::Finish(idx));
        }
        Ok(())
    }

    /// Trains every batched activation, returning outcomes in batch
    /// order. Which thread trains which client never matters: training
    /// only touches per-client state (the client itself, its replica
    /// view and its data shard), so any worker count produces the same
    /// outcomes.
    fn train_batch(&mut self, batch: &[(usize, f64)]) -> Vec<Result<TrainOutcome, CoreError>> {
        let config = self.config;
        let dataset = &self.dataset;
        let replicas = &self.replicas;
        // Collect disjoint &mut borrows of the batched clients: sort the
        // (distinct) indices, split the slice, place each borrow back at
        // its batch position.
        let mut order: Vec<(usize, usize)> = batch
            .iter()
            .enumerate()
            .map(|(pos, &(idx, _))| (idx, pos))
            .collect();
        order.sort_unstable();
        let mut slots: Vec<Option<&mut DagClient>> = (0..batch.len()).map(|_| None).collect();
        let mut remaining: &mut [DagClient] = &mut self.clients;
        let mut taken = 0usize;
        for &(idx, pos) in &order {
            let offset = idx - taken;
            let (_, rest) = remaining.split_at_mut(offset);
            let (client, rest) = rest.split_first_mut().expect("index in range");
            slots[pos] = Some(client);
            remaining = rest;
            taken = idx + 1;
        }
        let workers = config.workers.min(batch.len());
        if workers <= 1 {
            return slots
                .into_iter()
                .zip(batch)
                .map(|(client, &(idx, _))| {
                    client.expect("slot filled").train_round(
                        replicas[idx].tangle(),
                        &dataset.clients()[idx],
                        &config.dag,
                    )
                })
                .collect();
        }
        let jobs: Vec<Mutex<Option<(usize, &mut DagClient)>>> = slots
            .into_iter()
            .zip(batch)
            .map(|(client, &(idx, _))| Mutex::new(Some((idx, client.expect("slot filled")))))
            .collect();
        let results: Vec<Mutex<Option<Result<TrainOutcome, CoreError>>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (idx, client) = jobs[i].lock().take().expect("each job taken once");
                    let outcome = client.train_round(
                        replicas[idx].tangle(),
                        &dataset.clients()[idx],
                        &config.dag,
                    );
                    *results[i].lock() = Some(outcome);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker stored a result"))
            .collect()
    }

    /// Completes an activation: staleness check against the updated
    /// view, publish decision per the stale policy, metrics, and the
    /// next activation of this client.
    fn process_finish(&mut self, idx: usize, now: f64) -> Result<ActivationRecord, CoreError> {
        let PendingActivation { started, outcome } =
            self.pending[idx].take().expect("finish without activation");
        self.deliver(idx, now);
        let (tip1, tip2) = outcome.parents;
        let mut stale_parents = [tip1, tip2]
            .iter()
            .filter(|&&t| !self.replicas[idx].tangle().is_tip(t))
            .count();
        if tip1 == tip2 && stale_parents > 0 {
            stale_parents = 1;
        }
        let mut parents = (tip1, tip2);
        let mut publish = outcome.published.clone();
        let mut reselected = false;
        if stale_parents > 0 && publish.is_some() {
            match self.config.stale_policy {
                StaleTipPolicy::PublishAnyway => {}
                StaleTipPolicy::Discard => {
                    publish = None;
                    self.discarded_stale += 1;
                }
                StaleTipPolicy::Reselect => {
                    self.reselections += 1;
                    let data = &self.dataset.clients()[idx];
                    let replica = self.replicas[idx].tangle();
                    let (fresh, _, _) =
                        self.clients[idx].select_tips(replica, data, &self.config.dag)?;
                    let p1 = replica.payload_of(fresh.0)?.share();
                    let p2 = replica.payload_of(fresh.1)?.share();
                    let reference = average_parameters(&[&p1, &p2]);
                    let eval = self.clients[idx].evaluate_with(
                        &reference,
                        data.test_x(),
                        data.test_y(),
                    )?;
                    // Re-validation: only publish if the trained model
                    // still beats the fresh consensus reference.
                    if outcome.trained.accuracy >= eval.accuracy {
                        parents = fresh;
                        reselected = true;
                    } else {
                        publish = None;
                        self.discarded_stale += 1;
                    }
                }
            }
        }
        if publish.is_some() {
            // The histogram records the staleness of the parents
            // actually *approved*: a successful re-selection attaches
            // to fresh tips, so it lands in bucket 0.
            let approved_stale = if reselected { 0 } else { stale_parents };
            self.staleness_histogram[approved_stale.min(2)] += 1;
        }
        let published = publish.is_some();
        if let Some(params) = publish {
            self.publish(idx, now, params, parents)?;
        }
        let record = ActivationRecord {
            started,
            completed: now,
            client: outcome.client,
            accuracy: outcome.trained.accuracy,
            published,
            stale_parents,
            reselected,
        };
        self.history.push(record.clone());
        self.activations += 1;
        let gap = self.sample_interarrival(idx);
        self.schedule(now + gap, EventKind::Activate(idx));
        Ok(record)
    }

    /// Publishes one transaction: attach to the omniscient global
    /// tangle (analysis) and the publisher's own replica, then
    /// broadcast the [`GossipMessage`] so the transport delivers it to
    /// every peer.
    fn publish(
        &mut self,
        idx: usize,
        now: f64,
        params: Vec<f32>,
        parents: (TxId, TxId),
    ) -> Result<(), CoreError> {
        let replica = &self.replicas[idx];
        let net_parents = [
            replica
                .network_id(parents.0)
                .expect("selected tip is in the replica"),
            replica
                .network_id(parents.1)
                .expect("selected tip is in the replica"),
        ];
        let global_parents = [
            self.net_to_global[net_parents[0] as usize],
            self.net_to_global[net_parents[1] as usize],
        ];
        let payload = ModelPayload::new(params);
        let shared = payload.share();
        // The tangle dedups parents on attach; mirror that here so the
        // incremental client graph matches a full re-scan exactly.
        let mut parent_issuers = vec![self.global.get(global_parents[0])?.issuer()];
        if global_parents[1] != global_parents[0] {
            parent_issuers.push(self.global.get(global_parents[1])?.issuer());
        }
        let global_id =
            self.global
                .attach_with_meta(payload, &global_parents, Some(idx as u32), now as u32)?;
        self.graph.record(idx as u32, &parent_issuers);
        // Loopback network ids are the dense indices of the global
        // tangle, so id assignment needs no coordination.
        let net_id = global_id.index();
        debug_assert_eq!(net_id as usize, self.net_to_global.len());
        self.net_to_global.push(global_id);
        let message = TxMessage {
            id: net_id,
            parents: net_parents.to_vec(),
            params: shared,
            issuer: Some(idx as u32),
            round: now as u32,
        };
        // The publisher sees its own transaction immediately; everyone
        // else when the transport delivers it.
        self.replicas[idx].insert(&message)?;
        self.publications += 1;
        self.transport
            .broadcast(idx, now, GossipMessage::Transaction(message), &mut self.rng)
    }

    /// Processes events until the next activation completes and returns
    /// its record.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn step(&mut self) -> Result<ActivationRecord, CoreError> {
        loop {
            let top_is_activate = matches!(
                self.events
                    .peek()
                    .expect("event queue never empties")
                    .0
                    .kind,
                EventKind::Activate(_)
            );
            if top_is_activate {
                let batch = self.pop_activation_batch();
                self.process_activation_batch(&batch)?;
            } else {
                let Reverse(event) = self.events.pop().expect("event queue never empties");
                self.clock = event.time;
                match event.kind {
                    EventKind::Finish(idx) => return self.process_finish(idx, event.time),
                    EventKind::Activate(_) => unreachable!("peeked a non-activate"),
                }
            }
        }
    }

    /// Runs until `total_activations` activations have completed. The
    /// global tangle always contains every publication, so no flush is
    /// needed afterwards.
    ///
    /// # Errors
    ///
    /// Propagates model/tangle errors.
    pub fn run(&mut self) -> Result<(), CoreError> {
        while self.activations < self.config.total_activations {
            self.step()?;
        }
        Ok(())
    }

    /// The derived client graph of the global tangle (§4.3),
    /// maintained incrementally at publish time.
    pub fn client_graph(&self) -> Graph {
        self.graph.graph().clone()
    }

    /// Approval pureness of the global tangle (Table 2), maintained
    /// incrementally at publish time.
    pub fn approval_pureness(&self) -> f64 {
        self.graph.approval_pureness()
    }

    /// Mean accuracy over the last `n` activations.
    pub fn recent_accuracy(&self, n: usize) -> f32 {
        let take = n.min(self.history.len());
        if take == 0 {
            return 0.0;
        }
        self.history[self.history.len() - take..]
            .iter()
            .map(|r| r.accuracy)
            .sum::<f32>()
            / take as f32
    }
}

impl std::fmt::Debug for AsyncSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSimulation")
            .field("clock", &self.clock)
            .field("activations", &self.activations)
            .field("transactions", &self.global.len())
            .field("pending_deliveries", &self.pending_deliveries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfl_datasets::{fmnist_clustered, FmnistConfig};
    use dagfl_nn::{Dense, Model, Relu, Sequential};
    use std::sync::Arc;

    fn small_factory(features: usize) -> ModelFactory {
        Arc::new(move |rng: &mut StdRng| {
            Box::new(Sequential::new(vec![
                Box::new(Dense::new(rng, features, 16)),
                Box::new(Relu::new()),
                Box::new(Dense::new(rng, 16, 10)),
            ])) as Box<dyn Model>
        })
    }

    fn setup_with(config: AsyncConfig, num_clients: usize) -> AsyncSimulation {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients,
            samples_per_client: 50,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        AsyncSimulation::new(config, dataset, small_factory(features))
    }

    fn setup(total: usize, delay: f64) -> AsyncSimulation {
        setup_with(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    ..DagConfig::default()
                },
                total_activations: total,
                delay: DelayModel::constant(delay),
                ..AsyncConfig::default()
            },
            6,
        )
    }

    #[test]
    fn activations_advance_clock_and_tangle() {
        let mut sim = setup(30, 2.0);
        sim.run().unwrap();
        assert_eq!(sim.activations(), 30);
        assert!(sim.clock() > 0.0);
        assert!(sim.tangle().len() > 1, "nothing was published");
        assert_eq!(sim.history().len(), 30);
        let m = sim.metrics();
        assert_eq!(m.activations, 30);
        assert_eq!(m.transactions, sim.tangle().len());
        assert_eq!(m.publications + 1, sim.tangle().len());
        assert!(m.fresh_evaluations > 0, "walks must evaluate candidates");
        assert!((0.0..=1.0).contains(&m.fresh_eval_ratio()));
    }

    #[test]
    fn visibility_delay_creates_wider_frontiers() {
        let mut instant = setup(60, 0.0);
        instant.run().unwrap();
        let mut delayed = setup(60, 10.0);
        delayed.run().unwrap();
        // With a large propagation delay, concurrent publications cannot
        // see each other and attach to older parents, widening the DAG.
        let instant_tips = instant.tangle().stats().tips;
        let delayed_tips = delayed.tangle().stats().tips;
        assert!(
            delayed_tips >= instant_tips,
            "delay should widen the frontier: {instant_tips} vs {delayed_tips}"
        );
    }

    #[test]
    fn zero_delay_and_instant_training_collapse_to_a_chain() {
        // Instantaneous broadcast + instantaneous training reproduce the
        // old serial behaviour: the DAG degenerates towards a chain.
        let mut sim = setup(40, 0.0);
        sim.run().unwrap();
        assert!(
            sim.tangle().stats().tips <= 2,
            "expected a near-chain, got {} tips",
            sim.tangle().stats().tips
        );
        assert_eq!(sim.pending_deliveries(), 0, "zero delay leaves no backlog");
    }

    #[test]
    fn zero_activation_metrics_are_zero_not_nan() {
        // A run whose horizon elapses before any activation completes:
        // the metrics snapshot of a freshly constructed simulation has
        // activations == 0, elapsed == 0 and an empty latency record.
        // Every derived rate must report 0.0 — never NaN from a 0/0.
        let sim = setup(10, 2.0);
        let m = sim.metrics();
        assert_eq!(m.activations, 0);
        assert_eq!(m.publications, 0);
        assert_eq!(m.elapsed, 0.0);
        assert_eq!(m.activation_rate(), 0.0);
        assert_eq!(m.publish_fraction(), 0.0);
        assert_eq!(m.stale_fraction(), 0.0);
        assert_eq!(m.mean_publish_latency, 0.0);
        assert_eq!(m.max_publish_latency, 0.0);
        assert_eq!(m.fresh_evaluations, 0);
        assert_eq!(m.cached_evaluations, 0);
        assert_eq!(m.fresh_eval_ratio(), 0.0);
        for value in [
            m.activation_rate(),
            m.publish_fraction(),
            m.stale_fraction(),
            m.mean_publish_latency,
            m.mean_confirmation_depth,
        ] {
            assert!(value.is_finite(), "non-finite metric {value}");
        }
        // The genesis-only tangle still reports sane structure.
        assert_eq!(m.transactions, 1);
        assert_eq!(m.tips, 1);
    }

    #[test]
    fn zero_activation_recent_accuracy_is_zero() {
        let sim = setup(10, 2.0);
        assert_eq!(sim.recent_accuracy(30), 0.0);
        assert_eq!(sim.activations(), 0);
    }

    #[test]
    fn accuracy_improves_over_activations() {
        let mut sim = setup(80, 1.0);
        sim.run().unwrap();
        let early: f32 = sim.history()[..10].iter().map(|r| r.accuracy).sum::<f32>() / 10.0;
        let late = sim.recent_accuracy(10);
        assert!(
            late > early,
            "no progress under asynchrony: {early} -> {late}"
        );
    }

    #[test]
    fn specialization_emerges_without_rounds() {
        let mut sim = setup(80, 1.0);
        sim.run().unwrap();
        let pureness = sim.approval_pureness();
        let base = sim.dataset().base_pureness();
        assert!(pureness > base, "pureness {pureness} not above base {base}");
        assert!(sim.client_graph().total_weight() > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut sim = setup_with(
                AsyncConfig {
                    dag: DagConfig {
                        local_batches: 3,
                        ..DagConfig::default()
                    },
                    total_activations: 25,
                    delay: DelayModel::UniformJitter {
                        base: 1.0,
                        jitter: 2.0,
                    },
                    compute: ComputeProfile::TwoSpeed {
                        slow_fraction: 0.5,
                        slowdown: 3.0,
                    },
                    train_time: 0.5,
                    stale_policy: StaleTipPolicy::Reselect,
                    ..AsyncConfig::default()
                },
                6,
            );
            sim.run().unwrap();
            sim
        };
        let a = run();
        let b = run();
        assert_eq!(a.tangle().len(), b.tangle().len());
        assert_eq!(a.clock(), b.clock());
        assert_eq!(a.metrics(), b.metrics());
        let acc_a: Vec<f32> = a.history().iter().map(|r| r.accuracy).collect();
        let acc_b: Vec<f32> = b.history().iter().map(|r| r.accuracy).collect();
        assert_eq!(acc_a, acc_b);
    }

    #[test]
    fn replicas_lag_behind_the_global_tangle() {
        let mut sim = setup(50, 25.0);
        sim.run().unwrap();
        // With a large delay some deliveries must still be in flight,
        // and every replica holds at most what the global tangle holds.
        assert!(sim.pending_deliveries() > 0, "no deliveries in flight");
        for c in 0..6 {
            assert!(sim.replica(c).len() <= sim.tangle().len());
        }
    }

    #[test]
    fn slow_cohort_links_raise_publish_latency() {
        let constant = {
            let mut sim = setup_with(
                AsyncConfig {
                    dag: DagConfig {
                        local_batches: 2,
                        ..DagConfig::default()
                    },
                    total_activations: 30,
                    delay: DelayModel::constant(1.0),
                    ..AsyncConfig::default()
                },
                6,
            );
            sim.run().unwrap();
            sim.metrics()
        };
        let cohorts = {
            let mut sim = setup_with(
                AsyncConfig {
                    dag: DagConfig {
                        local_batches: 2,
                        ..DagConfig::default()
                    },
                    total_activations: 30,
                    delay: DelayModel::Cohorts {
                        slow_fraction: 0.5,
                        fast: 1.0,
                        slow: 10.0,
                        jitter: 0.0,
                    },
                    ..AsyncConfig::default()
                },
                6,
            );
            sim.run().unwrap();
            sim.metrics()
        };
        assert!(
            cohorts.mean_publish_latency > constant.mean_publish_latency,
            "heterogeneous links should raise latency: {} vs {}",
            cohorts.mean_publish_latency,
            constant.mean_publish_latency
        );
        assert!(cohorts.max_publish_latency >= 10.0);
        assert_eq!(constant.mean_publish_latency, 1.0);
    }

    #[test]
    fn training_time_makes_tips_go_stale() {
        let mut sim = setup_with(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    ..DagConfig::default()
                },
                total_activations: 60,
                mean_interarrival: 0.5,
                delay: DelayModel::constant(0.0),
                train_time: 2.0,
                stale_policy: StaleTipPolicy::PublishAnyway,
                ..AsyncConfig::default()
            },
            6,
        );
        sim.run().unwrap();
        let m = sim.metrics();
        assert!(
            m.stale_fraction() > 0.0,
            "concurrent training with instant broadcast must produce stale tips"
        );
        assert!(sim.history().iter().any(|r| r.stale_parents > 0));
    }

    #[test]
    fn discard_policy_drops_stale_publications() {
        let run = |policy: StaleTipPolicy| {
            let mut sim = setup_with(
                AsyncConfig {
                    dag: DagConfig {
                        local_batches: 3,
                        ..DagConfig::default()
                    },
                    total_activations: 60,
                    mean_interarrival: 0.5,
                    delay: DelayModel::constant(0.0),
                    train_time: 2.0,
                    stale_policy: policy,
                    ..AsyncConfig::default()
                },
                6,
            );
            sim.run().unwrap();
            sim.metrics()
        };
        let publish = run(StaleTipPolicy::PublishAnyway);
        let discard = run(StaleTipPolicy::Discard);
        assert!(discard.discarded_stale > 0, "nothing was discarded");
        assert!(
            discard.publications < publish.publications,
            "discarding stale tips must shrink the tangle: {} vs {}",
            discard.publications,
            publish.publications
        );
        // Discarded publications never carry stale parents into the DAG.
        assert_eq!(discard.staleness_histogram[1], 0);
        assert_eq!(discard.staleness_histogram[2], 0);
    }

    #[test]
    fn reselect_policy_attaches_to_fresh_tips() {
        let mut sim = setup_with(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    ..DagConfig::default()
                },
                total_activations: 60,
                mean_interarrival: 0.5,
                delay: DelayModel::constant(0.0),
                train_time: 2.0,
                stale_policy: StaleTipPolicy::Reselect,
                ..AsyncConfig::default()
            },
            6,
        );
        sim.run().unwrap();
        let m = sim.metrics();
        assert!(m.reselections > 0, "no reselection happened");
        assert!(sim.history().iter().any(|r| r.reselected));
    }

    #[test]
    fn matched_cohort_couples_network_and_compute() {
        let sim = setup_with(
            AsyncConfig {
                delay: DelayModel::Cohorts {
                    slow_fraction: 0.5,
                    fast: 1.0,
                    slow: 8.0,
                    jitter: 0.0,
                },
                compute: ComputeProfile::MatchNetworkCohort { slowdown: 4.0 },
                ..AsyncConfig::default()
            },
            12,
        );
        assert!(sim.slow_clients().iter().any(|&s| s));
        assert!(sim.slow_clients().iter().any(|&s| !s));
        for (i, &slow) in sim.slow_clients().iter().enumerate() {
            assert_eq!(
                sim.speeds()[i] < 1.0,
                slow,
                "client {i}: compute speed must mirror the network cohort"
            );
        }
    }

    #[test]
    fn metrics_report_throughput_and_depth() {
        let mut sim = setup(40, 1.0);
        sim.run().unwrap();
        let m = sim.metrics();
        assert!(m.activation_rate() > 0.0);
        assert!(m.publish_fraction() > 0.0 && m.publish_fraction() <= 1.0);
        assert!(m.elapsed > 0.0);
        assert!(m.mean_confirmation_depth > 0.0);
        assert_eq!(m.mean_publish_latency, 1.0);
    }

    #[test]
    fn recent_accuracy_handles_short_history() {
        let sim = setup(10, 1.0);
        assert_eq!(sim.recent_accuracy(5), 0.0);
    }

    #[test]
    fn validate_exempts_the_ignored_round_fields() {
        // `rounds`, `clients_per_round` and `parallel` are documented as
        // ignored by this mode; zeroing them must not reject a config
        // that runs fine.
        let config = AsyncConfig {
            dag: DagConfig {
                rounds: 0,
                clients_per_round: 0,
                ..DagConfig::default()
            },
            ..AsyncConfig::default()
        };
        assert!(config.validate().is_ok());
        // The shared hyperparameters are still checked.
        let bad = AsyncConfig {
            dag: DagConfig {
                learning_rate: -1.0,
                ..DagConfig::default()
            },
            ..AsyncConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("learning_rate"));
    }

    #[test]
    fn try_new_reports_errors_as_values() {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 3,
            samples_per_client: 20,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let err = AsyncSimulation::try_new(
            AsyncConfig {
                mean_interarrival: 0.0,
                ..AsyncConfig::default()
            },
            dataset,
            small_factory(features),
        )
        .unwrap_err();
        assert!(err.to_string().contains("mean_interarrival"));
    }

    #[test]
    fn replica_contents_match_the_messages_delivered() {
        // The transport seam must be the only channel into a replica:
        // every replica transaction is one the global tangle also holds
        // with identical weights, and its local attachment respects the
        // delivery + solidification order (parents before children).
        let mut sim = setup(40, 3.0);
        sim.run().unwrap();
        for c in 0..6 {
            let replica = sim.replica(c);
            let mut parents = Vec::new();
            for index in 0..replica.len() as u64 {
                let id = TxId::from_index(index);
                replica.parents_into(id, &mut parents).unwrap();
                for p in &parents {
                    assert!(p.index() < index, "parents attach first");
                }
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // Tentpole invariant: the batched event loop partitions work by
        // event times alone, so any worker count replays the exact
        // serial schedule — same metrics, clocks, histories, replicas.
        let run = |workers: usize| {
            let mut sim = setup_with(
                AsyncConfig {
                    dag: DagConfig {
                        local_batches: 3,
                        ..DagConfig::default()
                    },
                    total_activations: 40,
                    mean_interarrival: 0.5,
                    delay: DelayModel::UniformJitter {
                        base: 1.0,
                        jitter: 2.0,
                    },
                    compute: ComputeProfile::TwoSpeed {
                        slow_fraction: 0.5,
                        slowdown: 3.0,
                    },
                    train_time: 1.5,
                    stale_policy: StaleTipPolicy::Reselect,
                    workers,
                    ..AsyncConfig::default()
                },
                6,
            );
            sim.run().unwrap();
            sim
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.metrics(), parallel.metrics());
        assert_eq!(serial.clock(), parallel.clock());
        assert_eq!(serial.tangle().len(), parallel.tangle().len());
        let acc_a: Vec<f32> = serial.history().iter().map(|r| r.accuracy).collect();
        let acc_b: Vec<f32> = parallel.history().iter().map(|r| r.accuracy).collect();
        assert_eq!(acc_a, acc_b);
        for c in 0..6 {
            assert_eq!(serial.replica_digest(c), parallel.replica_digest(c));
        }
    }

    #[test]
    fn concurrent_activations_do_batch_under_training_time() {
        // With six Poisson clocks and a long training time, the heap
        // regularly holds several activations below the finish barrier;
        // the run above only proves equality, this proves the batched
        // path is actually exercised (tips go stale, which requires
        // overlapping activations).
        let mut sim = setup_with(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 2,
                    ..DagConfig::default()
                },
                total_activations: 40,
                mean_interarrival: 0.5,
                delay: DelayModel::constant(0.0),
                train_time: 2.0,
                workers: 2,
                ..AsyncConfig::default()
            },
            6,
        );
        sim.run().unwrap();
        assert!(
            sim.history().iter().any(|r| r.stale_parents > 0),
            "long training must overlap activations"
        );
    }

    #[test]
    fn incremental_client_graph_matches_full_rescan() {
        // Satellite: the publish-time tracker must agree with a full
        // re-scan of the global tangle at every horizon.
        let mut sim = setup(30, 1.0);
        for _ in 0..30 {
            sim.step().unwrap();
            let oracle = crate::client_graph_of(sim.tangle(), sim.dataset().num_clients());
            assert_eq!(sim.client_graph().edges(), oracle.edges());
            let oracle_pureness =
                crate::approval_pureness_of(sim.tangle(), &sim.dataset().cluster_labels());
            assert!((sim.approval_pureness() - oracle_pureness).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "mean_interarrival")]
    fn zero_interarrival_panics() {
        setup_with(
            AsyncConfig {
                mean_interarrival: 0.0,
                ..AsyncConfig::default()
            },
            3,
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        setup_with(
            AsyncConfig {
                delay: DelayModel::constant(-1.0),
                ..AsyncConfig::default()
            },
            3,
        );
    }
}
