//! One client's view of the network: a local tangle replica fed
//! exclusively by [`GossipMessage`]s, with a solidification buffer for
//! out-of-order arrivals.
//!
//! # Memory model
//!
//! At 10k+ clients the dominant cost of per-client replicas is no longer
//! the model parameters (those were always behind an `Arc`) but the
//! per-transaction bookkeeping each replica used to copy: parent lists,
//! issuer/round metadata and the payload wrapper. Replicas therefore
//! share one [`SegmentRegistry`] — an append-only intern store of
//! immutable [`Arc`]'d transaction records keyed by network id. Each
//! [`Replica`] keeps only its *delta*: which records it has attached, in
//! which local order, plus the derived children/tip indices that depend
//! on that order. Attaching a transaction that any other replica already
//! holds costs one `Arc` clone instead of a fresh allocation.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use dagfl_tangle::{TangleError, TangleRead, TxId};

use crate::{CoreError, Envelope, GossipMessage, ModelPayload, TxMessage};

/// The genesis always carries network id 0, in every transport.
pub const GENESIS_NET_ID: u64 = 0;

/// One immutable transaction as gossiped over the network: the unit
/// shared between replicas through the [`SegmentRegistry`].
///
/// Parents are stored as *network* ids, deduplicated but in approval
/// order — local ids differ between replicas (they depend on arrival
/// order), so they live in each replica's delta instead.
#[derive(Debug)]
struct TxRecord {
    net_id: u64,
    /// Deduplicated parent network ids, in approval order. Empty only
    /// for the genesis.
    parents: Box<[u64]>,
    payload: ModelPayload,
    issuer: Option<u32>,
    round: u32,
}

/// A shared, append-only intern store of transaction records.
///
/// Cloning the registry is cheap and shares the underlying store; the
/// simulator hands one clone to every replica so that a transaction
/// gossiped to `n` clients is materialized once, not `n` times. Records
/// are immutable once interned (first writer wins — network ids are
/// unique per publication), so readers never contend beyond the brief
/// lock taken on insert.
#[derive(Debug, Clone, Default)]
pub struct SegmentRegistry {
    records: Arc<Mutex<HashMap<u64, Arc<TxRecord>>>>,
}

impl SegmentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct transactions interned so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no transaction has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Returns the record for `net_id`, interning it from `msg` (with
    /// the given deduplicated parents) if absent.
    fn intern(&self, msg: &TxMessage, deduped_parents: &[u64]) -> Arc<TxRecord> {
        let mut records = self.records.lock();
        Arc::clone(records.entry(msg.id).or_insert_with(|| {
            Arc::new(TxRecord {
                net_id: msg.id,
                parents: deduped_parents.into(),
                payload: ModelPayload::from_shared(msg.params.clone()),
                issuer: msg.issuer,
                round: msg.round,
            })
        }))
    }

    /// Interns a genesis payload under [`GENESIS_NET_ID`].
    fn intern_genesis(&self, genesis: ModelPayload) -> Arc<TxRecord> {
        let mut records = self.records.lock();
        Arc::clone(records.entry(GENESIS_NET_ID).or_insert_with(|| {
            Arc::new(TxRecord {
                net_id: GENESIS_NET_ID,
                parents: Box::new([]),
                payload: genesis,
                issuer: None,
                round: 0,
            })
        }))
    }
}

/// One replica's ordered view over shared transaction records: the
/// per-client delta of the segment-shared storage scheme.
///
/// Local ids are dense indices in attachment order (genesis is id 0,
/// parents always precede children), exactly the contract of
/// [`TangleRead`] — so tip selection, weights and metrics run on a
/// replica view unchanged.
#[derive(Debug, Clone)]
pub struct ReplicaTangle {
    /// Shared records in local attachment order.
    records: Vec<Arc<TxRecord>>,
    /// Direct approvers per local id, in attachment order.
    children: Vec<Vec<TxId>>,
    /// Local ids with no approvers yet.
    tips: HashSet<TxId>,
    /// Network id → local id.
    to_local: HashMap<u64, TxId>,
    /// Local id (by index) → network id.
    to_network: Vec<u64>,
}

impl ReplicaTangle {
    fn new(genesis: Arc<TxRecord>) -> Self {
        let g = TxId::from_index(0);
        let mut to_local = HashMap::new();
        to_local.insert(genesis.net_id, g);
        let to_network = vec![genesis.net_id];
        let mut tips = HashSet::new();
        tips.insert(g);
        Self {
            records: vec![genesis],
            children: vec![Vec::new()],
            tips,
            to_local,
            to_network,
        }
    }

    /// Attaches an interned record whose parents are all present in
    /// this view. Returns the assigned local id.
    fn attach(&mut self, record: Arc<TxRecord>) -> TxId {
        let id = TxId::from_index(self.records.len() as u64);
        for net_parent in record.parents.iter() {
            let parent = self.to_local[net_parent];
            self.children[parent.index() as usize].push(id);
            self.tips.remove(&parent);
        }
        self.to_local.insert(record.net_id, id);
        self.to_network.push(record.net_id);
        self.records.push(record);
        self.children.push(Vec::new());
        self.tips.insert(id);
        id
    }

    fn record(&self, id: TxId) -> Result<&Arc<TxRecord>, TangleError> {
        self.records
            .get(id.index() as usize)
            .ok_or(TangleError::UnknownTransaction(id))
    }

    /// Number of transactions, including the genesis.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always `false`: a replica is born holding the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The local id of the genesis transaction.
    pub fn genesis(&self) -> TxId {
        TxId::from_index(0)
    }

    /// All approval edges as `(child, parent)` pairs of local ids, in
    /// insertion order (the analogue of [`dagfl_tangle::Tangle::edges`]).
    pub fn edges(&self) -> Vec<(TxId, TxId)> {
        let mut edges = Vec::new();
        for (index, record) in self.records.iter().enumerate() {
            for net_parent in record.parents.iter() {
                edges.push((TxId::from_index(index as u64), self.to_local[net_parent]));
            }
        }
        edges
    }
}

impl TangleRead<ModelPayload> for ReplicaTangle {
    fn len(&self) -> usize {
        self.records.len()
    }

    fn payload_of(&self, id: TxId) -> Result<&ModelPayload, TangleError> {
        Ok(&self.record(id)?.payload)
    }

    fn issuer_of(&self, id: TxId) -> Result<Option<u32>, TangleError> {
        Ok(self.record(id)?.issuer)
    }

    fn round_of(&self, id: TxId) -> Result<u32, TangleError> {
        Ok(self.record(id)?.round)
    }

    fn parents_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
        let record = self.record(id)?;
        out.clear();
        for net_parent in record.parents.iter() {
            // A record only attaches after all parents are local, so the
            // translation cannot fail on a consistent view.
            out.push(
                self.to_local
                    .get(net_parent)
                    .copied()
                    .ok_or(TangleError::UnknownParent(id))?,
            );
        }
        Ok(())
    }

    fn children_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
        let children = self
            .children
            .get(id.index() as usize)
            .ok_or(TangleError::UnknownTransaction(id))?;
        out.clear();
        out.extend_from_slice(children);
        Ok(())
    }

    fn is_tip(&self, id: TxId) -> bool {
        self.tips.contains(&id)
    }

    fn tips(&self) -> Vec<TxId> {
        let mut tips: Vec<TxId> = self.tips.iter().copied().collect();
        tips.sort();
        tips
    }
}

/// A client's tangle replica plus the id maps linking local ids to
/// network ids.
///
/// All mutation goes through messages: the owner inserts its own
/// publications with [`Replica::insert`] and everything received from
/// the transport with [`Replica::apply`]. A transaction whose parents
/// are still unknown waits in the solidification buffer and attaches
/// automatically once they arrive — in a gossip network nothing
/// guarantees causal delivery order.
///
/// Transaction contents live in a [`SegmentRegistry`]; construct
/// replicas with [`Replica::with_registry`] to share one store across a
/// whole simulated network ([`Replica::new`] gives the replica a
/// private store, which is what a real networked peer wants).
///
/// # Example
///
/// ```
/// use dagfl_core::{ModelPayload, Replica, TxMessage};
/// use std::sync::Arc;
///
/// let mut replica = Replica::new(ModelPayload::new(vec![0.0]));
/// let msg = TxMessage {
///     id: 7,
///     parents: vec![0],
///     params: Arc::new(vec![1.0]),
///     issuer: Some(2),
///     round: 1,
/// };
/// replica.insert(&msg).unwrap();
/// assert!(replica.contains(7));
/// assert_eq!(replica.tangle().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Replica {
    view: ReplicaTangle,
    registry: SegmentRegistry,
    /// Received but not yet solid: `(arrival time, message)`.
    buffered: Vec<(f64, TxMessage)>,
}

impl Replica {
    /// Creates a replica holding only the genesis (network id 0), with
    /// a private record store.
    pub fn new(genesis: ModelPayload) -> Self {
        Self::with_registry(genesis, SegmentRegistry::new())
    }

    /// Creates a replica holding only the genesis, interned into (and
    /// sharing records with) the given registry.
    pub fn with_registry(genesis: ModelPayload, registry: SegmentRegistry) -> Self {
        let record = registry.intern_genesis(genesis);
        Self {
            view: ReplicaTangle::new(record),
            registry,
            buffered: Vec::new(),
        }
    }

    /// The local tangle view.
    pub fn tangle(&self) -> &ReplicaTangle {
        &self.view
    }

    /// Whether a transaction with this network id has been attached.
    pub fn contains(&self, net_id: u64) -> bool {
        self.view.to_local.contains_key(&net_id)
    }

    /// The local id of a network id, if attached.
    pub fn local_id(&self, net_id: u64) -> Option<TxId> {
        self.view.to_local.get(&net_id).copied()
    }

    /// The network id of a local transaction.
    pub fn network_id(&self, local: TxId) -> Option<u64> {
        self.view.to_network.get(local.index() as usize).copied()
    }

    /// All known network ids in local attachment order (starts with
    /// the genesis).
    pub fn network_ids(&self) -> &[u64] {
        &self.view.to_network
    }

    /// Messages waiting in the solidification buffer.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Attaches one transaction whose parents are all known. This is
    /// how a peer records its *own* publication; received messages go
    /// through [`Replica::apply`] instead. Re-inserting a known id is
    /// a no-op returning the existing local id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if a parent is unknown (the
    /// message belongs in the solidification buffer, not here).
    pub fn insert(&mut self, msg: &TxMessage) -> Result<TxId, CoreError> {
        if let Some(&existing) = self.view.to_local.get(&msg.id) {
            return Ok(existing);
        }
        if msg.parents.is_empty() {
            return Err(TangleError::MissingParents.into());
        }
        // Validate and dedup (preserving order) before interning, so a
        // record always stores resolvable, duplicate-free parents.
        let mut deduped: Vec<u64> = Vec::with_capacity(msg.parents.len());
        for p in &msg.parents {
            if !self.view.to_local.contains_key(p) {
                return Err(CoreError::Config(format!(
                    "transaction {} references unknown parent {p}",
                    msg.id
                )));
            }
            if !deduped.contains(p) {
                deduped.push(*p);
            }
        }
        let record = self.registry.intern(msg, &deduped);
        let local = self.view.attach(record);
        debug_assert_eq!(local.index() as usize + 1, self.view.to_network.len());
        Ok(local)
    }

    fn is_solid(&self, msg: &TxMessage) -> bool {
        msg.parents
            .iter()
            .all(|p| self.view.to_local.contains_key(p))
    }

    /// Applies delivered envelopes: merges them with the
    /// solidification buffer, orders everything by `(arrival time,
    /// network id)` for determinism, attaches every message whose
    /// parents are known (repeating until a fixpoint, since one
    /// attachment can solidify others) and buffers the rest. Duplicate
    /// deliveries of known transactions are dropped. Returns the
    /// number of transactions attached.
    pub fn apply(&mut self, incoming: Vec<Envelope>) -> usize {
        let mut due = std::mem::take(&mut self.buffered);
        for envelope in incoming {
            let at = envelope.at;
            match envelope.message {
                GossipMessage::Transaction(msg) => due.push((at, msg)),
                GossipMessage::Snapshot(batch) => due.extend(batch.into_iter().map(|m| (at, m))),
            }
        }
        if due.is_empty() {
            return 0;
        }
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        let mut attached = 0;
        loop {
            let mut progressed = false;
            due.retain(|(_, msg)| {
                if self.contains(msg.id) {
                    return false; // duplicate (e.g. snapshot overlap)
                }
                if self.is_solid(msg) {
                    self.insert(msg).expect("solid message attaches");
                    attached += 1;
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                break;
            }
        }
        // Not yet solid: wait for the parents to arrive.
        self.buffered = due;
        attached
    }

    /// How many deliveries would *not* attach right now: envelopes
    /// still in flight (`at > now`), plus due and buffered messages
    /// whose parents are neither attached nor deliverable.
    pub fn backlog(&self, in_flight: &[Envelope], now: f64) -> usize {
        let future = in_flight.iter().filter(|e| e.at > now).count();
        let mut known: HashSet<u64> = self.view.to_local.keys().copied().collect();
        let mut due: Vec<(u64, &[u64])> = self
            .buffered
            .iter()
            .map(|(_, m)| (m.id, m.parents.as_slice()))
            .collect();
        for envelope in in_flight.iter().filter(|e| e.at <= now) {
            match &envelope.message {
                GossipMessage::Transaction(m) => due.push((m.id, &m.parents)),
                GossipMessage::Snapshot(batch) => {
                    due.extend(batch.iter().map(|m| (m.id, m.parents.as_slice())));
                }
            }
        }
        loop {
            let before = due.len();
            due.retain(|(id, parents)| {
                let solid = parents.iter().all(|p| known.contains(p));
                if solid {
                    known.insert(*id);
                }
                !solid
            });
            if due.len() == before {
                break;
            }
        }
        future + due.len()
    }

    /// The transactions a peer that already holds `have` is missing,
    /// in topological order — the answer to a snapshot request. The
    /// genesis is never included (every replica is born with it).
    pub fn snapshot_messages(&self, have: &HashSet<u64>) -> Vec<TxMessage> {
        self.view
            .records
            .iter()
            .filter_map(|record| {
                if record.parents.is_empty() || have.contains(&record.net_id) {
                    return None;
                }
                Some(TxMessage {
                    id: record.net_id,
                    parents: record.parents.to_vec(),
                    params: record.payload.share(),
                    issuer: record.issuer,
                    round: record.round,
                })
            })
            .collect()
    }

    /// An order-independent digest of the replica's contents (ids,
    /// approvals, weights, metadata). Two replicas hold the same
    /// transaction set if and only if their digests match — the
    /// convergence check of the networked mode.
    pub fn digest(&self) -> u64 {
        let mut total: u64 = 0;
        for record in &self.view.records {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            let mut mix = |value: u64| {
                for byte in value.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            };
            mix(record.net_id);
            mix(record.parents.len() as u64);
            for &p in record.parents.iter() {
                mix(p);
            }
            for w in record.payload.params() {
                mix(w.to_bits() as u64);
            }
            mix(record.issuer.map_or(u64::MAX, |i| i as u64));
            mix(record.round as u64);
            total = total.wrapping_add(h);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(id: u64, parents: &[u64]) -> TxMessage {
        TxMessage {
            id,
            parents: parents.to_vec(),
            params: Arc::new(vec![id as f32, 0.5]),
            issuer: Some((id % 4) as u32),
            round: id as u32,
        }
    }

    fn envelope(at: f64, m: TxMessage) -> Envelope {
        Envelope {
            at,
            message: GossipMessage::Transaction(m),
        }
    }

    fn fresh() -> Replica {
        Replica::new(ModelPayload::new(vec![0.0, 0.0]))
    }

    #[test]
    fn new_replica_holds_only_genesis() {
        let r = fresh();
        assert_eq!(r.tangle().len(), 1);
        assert!(r.contains(GENESIS_NET_ID));
        assert_eq!(r.network_ids(), &[GENESIS_NET_ID]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn insert_translates_parents_and_records_maps() {
        let mut r = fresh();
        let local = r.insert(&msg(5, &[0])).unwrap();
        assert_eq!(r.local_id(5), Some(local));
        assert_eq!(r.network_id(local), Some(5));
        let child = r.insert(&msg(9, &[5, 0])).unwrap();
        assert_eq!(r.tangle().parents_of(child).unwrap().len(), 2);
    }

    #[test]
    fn insert_rejects_unknown_parent() {
        let mut r = fresh();
        let err = r.insert(&msg(5, &[3])).unwrap_err();
        assert!(err.to_string().contains("unknown parent"));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut r = fresh();
        let a = r.insert(&msg(5, &[0])).unwrap();
        let b = r.insert(&msg(5, &[0])).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.tangle().len(), 2);
    }

    #[test]
    fn out_of_order_child_waits_then_attaches() {
        // Satellite: a child delivered before its parent sits in the
        // solidification buffer, then attaches when the parent lands.
        let mut r = fresh();
        let attached = r.apply(vec![envelope(1.0, msg(7, &[5]))]);
        assert_eq!(attached, 0);
        assert_eq!(r.buffered(), 1);
        assert!(!r.contains(7));
        let attached = r.apply(vec![envelope(2.0, msg(5, &[0]))]);
        assert_eq!(attached, 2, "parent arrival must solidify the child");
        assert_eq!(r.buffered(), 0);
        assert!(r.contains(5) && r.contains(7));
        // Parent precedes child in the local order.
        assert!(r.local_id(5).unwrap() < r.local_id(7).unwrap());
    }

    #[test]
    fn apply_orders_by_arrival_time_then_id() {
        let mut a = fresh();
        a.apply(vec![
            envelope(2.0, msg(5, &[0])),
            envelope(1.0, msg(6, &[0])),
        ]);
        assert!(a.local_id(6).unwrap() < a.local_id(5).unwrap());

        let mut b = fresh();
        b.apply(vec![
            envelope(1.0, msg(5, &[0])),
            envelope(1.0, msg(6, &[0])),
        ]);
        assert!(b.local_id(5).unwrap() < b.local_id(6).unwrap());
    }

    #[test]
    fn duplicate_deliveries_are_dropped() {
        let mut r = fresh();
        r.apply(vec![envelope(1.0, msg(5, &[0]))]);
        let attached = r.apply(vec![envelope(2.0, msg(5, &[0]))]);
        assert_eq!(attached, 0);
        assert_eq!(r.tangle().len(), 2);
    }

    #[test]
    fn backlog_counts_future_and_unsolid() {
        let mut r = fresh();
        r.apply(vec![envelope(1.0, msg(9, &[5]))]); // buffered, parent missing
        let in_flight = [
            envelope(10.0, msg(5, &[0])), // future: would solidify 9
            envelope(1.5, msg(11, &[9])), // due but chain not solid
        ];
        assert_eq!(r.backlog(&in_flight, 2.0), 3);
        // Once 5 is due, the whole chain becomes deliverable.
        assert_eq!(r.backlog(&in_flight, 10.0), 0);
        assert_eq!(r.backlog(&[], 0.0), 1, "buffered child alone");
    }

    #[test]
    fn snapshot_messages_exclude_genesis_and_known() {
        let mut r = fresh();
        r.insert(&msg(5, &[0])).unwrap();
        r.insert(&msg(9, &[5])).unwrap();
        let all = r.snapshot_messages(&HashSet::new());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, 5);
        assert_eq!(all[1].id, 9);
        assert_eq!(all[1].parents, vec![5]);
        let have: HashSet<u64> = [5u64].into_iter().collect();
        let missing = r.snapshot_messages(&have);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].id, 9);
    }

    #[test]
    fn late_join_snapshot_equals_replayed_gossip() {
        // Satellite: a replica synced from a snapshot must equal one
        // built from the original gossip stream, message by message.
        let stream = [
            msg(5, &[0]),
            msg(6, &[0, 5]),
            msg(9, &[6, 5]),
            msg(12, &[9, 9]),
        ];
        let mut replayed = fresh();
        for (i, m) in stream.iter().enumerate() {
            replayed.apply(vec![envelope(i as f64, m.clone())]);
        }
        let mut synced = fresh();
        let batch = replayed.snapshot_messages(&HashSet::new());
        synced.apply(vec![Envelope {
            at: 0.0,
            message: GossipMessage::Snapshot(batch),
        }]);
        assert_eq!(synced.tangle().len(), replayed.tangle().len());
        assert_eq!(synced.digest(), replayed.digest());
        assert_eq!(synced.network_ids(), replayed.network_ids());
        assert_eq!(synced.tangle().edges(), replayed.tangle().edges());
    }

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let mut a = fresh();
        a.insert(&msg(5, &[0])).unwrap();
        a.insert(&msg(6, &[0])).unwrap();
        let mut b = fresh();
        b.insert(&msg(6, &[0])).unwrap();
        b.insert(&msg(5, &[0])).unwrap();
        assert_eq!(a.digest(), b.digest(), "same set, different order");

        let mut c = fresh();
        c.insert(&msg(5, &[0])).unwrap();
        assert_ne!(a.digest(), c.digest(), "different sets must differ");
    }

    #[test]
    fn shared_registry_interns_each_transaction_once() {
        // Satellite: two replicas on one registry share records — the
        // second attachment is an `Arc` clone, not a new allocation.
        let registry = SegmentRegistry::new();
        let genesis = ModelPayload::new(vec![0.0, 0.0]);
        let mut a = Replica::with_registry(genesis.clone(), registry.clone());
        let mut b = Replica::with_registry(genesis, registry.clone());
        a.insert(&msg(5, &[0])).unwrap();
        a.insert(&msg(9, &[5])).unwrap();
        b.apply(vec![
            envelope(0.5, msg(9, &[5])),
            envelope(1.0, msg(5, &[0])),
        ]);
        assert_eq!(registry.len(), 3, "genesis + two transactions, once each");
        assert_eq!(a.digest(), b.digest());
        let ra = a.view.record(a.local_id(9).unwrap()).unwrap();
        let rb = b.view.record(b.local_id(9).unwrap()).unwrap();
        assert!(Arc::ptr_eq(ra, rb), "replicas must share the record");
    }

    #[test]
    fn replica_view_implements_tangle_read() {
        let mut r = fresh();
        r.insert(&msg(5, &[0])).unwrap();
        r.insert(&msg(9, &[5, 0])).unwrap();
        let t = r.tangle();
        assert_eq!(TangleRead::len(t), 3);
        assert_eq!(t.issuer_of(TxId::from_index(1)).unwrap(), Some(1));
        assert_eq!(t.round_of(TxId::from_index(2)).unwrap(), 9);
        assert_eq!(
            t.payload_of(TxId::from_index(1)).unwrap().params(),
            &[5.0, 0.5]
        );
        assert_eq!(
            t.parents_of(TxId::from_index(2)).unwrap(),
            vec![TxId::from_index(1), TxId::from_index(0)]
        );
        assert_eq!(
            t.children_of(TxId::from_index(0)).unwrap(),
            vec![TxId::from_index(1), TxId::from_index(2)]
        );
        assert!(t.is_tip(TxId::from_index(2)) && !t.is_tip(TxId::from_index(1)));
        assert_eq!(TangleRead::tips(t), vec![TxId::from_index(2)]);
        assert!(t.payload_of(TxId::from_index(7)).is_err());
        assert!(!t.is_empty());
        assert_eq!(t.genesis(), TxId::from_index(0));
    }
}
