//! One client's view of the network: a local tangle replica fed
//! exclusively by [`GossipMessage`]s, with a solidification buffer for
//! out-of-order arrivals.

use std::collections::{HashMap, HashSet};

use dagfl_tangle::{Tangle, TxId};

use crate::{CoreError, Envelope, GossipMessage, ModelPayload, ModelTangle, TxMessage};

/// A client's tangle replica plus the id maps linking local ids to
/// network ids.
///
/// All mutation goes through messages: the owner inserts its own
/// publications with [`Replica::insert`] and everything received from
/// the transport with [`Replica::apply`]. A transaction whose parents
/// are still unknown waits in the solidification buffer and attaches
/// automatically once they arrive — in a gossip network nothing
/// guarantees causal delivery order.
///
/// # Example
///
/// ```
/// use dagfl_core::{ModelPayload, Replica, TxMessage};
/// use std::sync::Arc;
///
/// let mut replica = Replica::new(ModelPayload::new(vec![0.0]));
/// let msg = TxMessage {
///     id: 7,
///     parents: vec![0],
///     params: Arc::new(vec![1.0]),
///     issuer: Some(2),
///     round: 1,
/// };
/// replica.insert(&msg).unwrap();
/// assert!(replica.contains(7));
/// assert_eq!(replica.tangle().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Replica {
    tangle: ModelTangle,
    /// Network id → id in this replica.
    to_local: HashMap<u64, TxId>,
    /// Replica id (by index) → network id.
    to_network: Vec<u64>,
    /// Received but not yet solid: `(arrival time, message)`.
    buffered: Vec<(f64, TxMessage)>,
}

/// The genesis always carries network id 0, in every transport.
pub const GENESIS_NET_ID: u64 = 0;

impl Replica {
    /// Creates a replica holding only the genesis (network id 0).
    pub fn new(genesis: ModelPayload) -> Self {
        let tangle = Tangle::new(genesis);
        let g = tangle.genesis();
        let mut to_local = HashMap::new();
        to_local.insert(GENESIS_NET_ID, g);
        Self {
            tangle,
            to_local,
            to_network: vec![GENESIS_NET_ID],
            buffered: Vec::new(),
        }
    }

    /// The local tangle.
    pub fn tangle(&self) -> &ModelTangle {
        &self.tangle
    }

    /// Whether a transaction with this network id has been attached.
    pub fn contains(&self, net_id: u64) -> bool {
        self.to_local.contains_key(&net_id)
    }

    /// The local id of a network id, if attached.
    pub fn local_id(&self, net_id: u64) -> Option<TxId> {
        self.to_local.get(&net_id).copied()
    }

    /// The network id of a local transaction.
    pub fn network_id(&self, local: TxId) -> Option<u64> {
        self.to_network.get(local.index() as usize).copied()
    }

    /// All known network ids in local attachment order (starts with
    /// the genesis).
    pub fn network_ids(&self) -> &[u64] {
        &self.to_network
    }

    /// Messages waiting in the solidification buffer.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Attaches one transaction whose parents are all known. This is
    /// how a peer records its *own* publication; received messages go
    /// through [`Replica::apply`] instead. Re-inserting a known id is
    /// a no-op returning the existing local id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if a parent is unknown (the
    /// message belongs in the solidification buffer, not here).
    pub fn insert(&mut self, msg: &TxMessage) -> Result<TxId, CoreError> {
        if let Some(&existing) = self.to_local.get(&msg.id) {
            return Ok(existing);
        }
        let parents: Vec<TxId> = msg
            .parents
            .iter()
            .map(|p| {
                self.to_local.get(p).copied().ok_or_else(|| {
                    CoreError::Config(format!(
                        "transaction {} references unknown parent {p}",
                        msg.id
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let local = self.tangle.attach_with_meta(
            ModelPayload::from_shared(msg.params.clone()),
            &parents,
            msg.issuer,
            msg.round,
        )?;
        self.to_local.insert(msg.id, local);
        debug_assert_eq!(local.index() as usize, self.to_network.len());
        self.to_network.push(msg.id);
        Ok(local)
    }

    fn is_solid(&self, msg: &TxMessage) -> bool {
        msg.parents.iter().all(|p| self.to_local.contains_key(p))
    }

    /// Applies delivered envelopes: merges them with the
    /// solidification buffer, orders everything by `(arrival time,
    /// network id)` for determinism, attaches every message whose
    /// parents are known (repeating until a fixpoint, since one
    /// attachment can solidify others) and buffers the rest. Duplicate
    /// deliveries of known transactions are dropped. Returns the
    /// number of transactions attached.
    pub fn apply(&mut self, incoming: Vec<Envelope>) -> usize {
        let mut due = std::mem::take(&mut self.buffered);
        for envelope in incoming {
            let at = envelope.at;
            match envelope.message {
                GossipMessage::Transaction(msg) => due.push((at, msg)),
                GossipMessage::Snapshot(batch) => due.extend(batch.into_iter().map(|m| (at, m))),
            }
        }
        if due.is_empty() {
            return 0;
        }
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        let mut attached = 0;
        loop {
            let mut progressed = false;
            due.retain(|(_, msg)| {
                if self.contains(msg.id) {
                    return false; // duplicate (e.g. snapshot overlap)
                }
                if self.is_solid(msg) {
                    self.insert(msg).expect("solid message attaches");
                    attached += 1;
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                break;
            }
        }
        // Not yet solid: wait for the parents to arrive.
        self.buffered = due;
        attached
    }

    /// How many deliveries would *not* attach right now: envelopes
    /// still in flight (`at > now`), plus due and buffered messages
    /// whose parents are neither attached nor deliverable.
    pub fn backlog(&self, in_flight: &[Envelope], now: f64) -> usize {
        let future = in_flight.iter().filter(|e| e.at > now).count();
        let mut known: HashSet<u64> = self.to_local.keys().copied().collect();
        let mut due: Vec<(u64, &[u64])> = self
            .buffered
            .iter()
            .map(|(_, m)| (m.id, m.parents.as_slice()))
            .collect();
        for envelope in in_flight.iter().filter(|e| e.at <= now) {
            match &envelope.message {
                GossipMessage::Transaction(m) => due.push((m.id, &m.parents)),
                GossipMessage::Snapshot(batch) => {
                    due.extend(batch.iter().map(|m| (m.id, m.parents.as_slice())));
                }
            }
        }
        loop {
            let before = due.len();
            due.retain(|(id, parents)| {
                let solid = parents.iter().all(|p| known.contains(p));
                if solid {
                    known.insert(*id);
                }
                !solid
            });
            if due.len() == before {
                break;
            }
        }
        future + due.len()
    }

    /// The transactions a peer that already holds `have` is missing,
    /// in topological order — the answer to a snapshot request. The
    /// genesis is never included (every replica is born with it).
    pub fn snapshot_messages(&self, have: &HashSet<u64>) -> Vec<TxMessage> {
        let snapshot = self.tangle.snapshot();
        snapshot
            .records()
            .iter()
            .enumerate()
            .filter_map(|(index, record)| {
                let net_id = self.to_network[index];
                if record.parents.is_empty() || have.contains(&net_id) {
                    return None;
                }
                Some(TxMessage {
                    id: net_id,
                    parents: record
                        .parents
                        .iter()
                        .map(|&p| self.to_network[p as usize])
                        .collect(),
                    params: record.payload.share(),
                    issuer: record.issuer,
                    round: record.round,
                })
            })
            .collect()
    }

    /// An order-independent digest of the replica's contents (ids,
    /// approvals, weights, metadata). Two replicas hold the same
    /// transaction set if and only if their digests match — the
    /// convergence check of the networked mode.
    pub fn digest(&self) -> u64 {
        let mut total: u64 = 0;
        for (index, tx) in self.tangle.iter().enumerate() {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            let mut mix = |value: u64| {
                for byte in value.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            };
            mix(self.to_network[index]);
            mix(tx.parents().len() as u64);
            for p in tx.parents() {
                mix(self.to_network[p.index() as usize]);
            }
            for w in tx.payload().params() {
                mix(w.to_bits() as u64);
            }
            mix(tx.issuer().map_or(u64::MAX, |i| i as u64));
            mix(tx.round() as u64);
            total = total.wrapping_add(h);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(id: u64, parents: &[u64]) -> TxMessage {
        TxMessage {
            id,
            parents: parents.to_vec(),
            params: Arc::new(vec![id as f32, 0.5]),
            issuer: Some((id % 4) as u32),
            round: id as u32,
        }
    }

    fn envelope(at: f64, m: TxMessage) -> Envelope {
        Envelope {
            at,
            message: GossipMessage::Transaction(m),
        }
    }

    fn fresh() -> Replica {
        Replica::new(ModelPayload::new(vec![0.0, 0.0]))
    }

    #[test]
    fn new_replica_holds_only_genesis() {
        let r = fresh();
        assert_eq!(r.tangle().len(), 1);
        assert!(r.contains(GENESIS_NET_ID));
        assert_eq!(r.network_ids(), &[GENESIS_NET_ID]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn insert_translates_parents_and_records_maps() {
        let mut r = fresh();
        let local = r.insert(&msg(5, &[0])).unwrap();
        assert_eq!(r.local_id(5), Some(local));
        assert_eq!(r.network_id(local), Some(5));
        let child = r.insert(&msg(9, &[5, 0])).unwrap();
        assert_eq!(r.tangle().get(child).unwrap().parents().len(), 2);
    }

    #[test]
    fn insert_rejects_unknown_parent() {
        let mut r = fresh();
        let err = r.insert(&msg(5, &[3])).unwrap_err();
        assert!(err.to_string().contains("unknown parent"));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut r = fresh();
        let a = r.insert(&msg(5, &[0])).unwrap();
        let b = r.insert(&msg(5, &[0])).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.tangle().len(), 2);
    }

    #[test]
    fn out_of_order_child_waits_then_attaches() {
        // Satellite: a child delivered before its parent sits in the
        // solidification buffer, then attaches when the parent lands.
        let mut r = fresh();
        let attached = r.apply(vec![envelope(1.0, msg(7, &[5]))]);
        assert_eq!(attached, 0);
        assert_eq!(r.buffered(), 1);
        assert!(!r.contains(7));
        let attached = r.apply(vec![envelope(2.0, msg(5, &[0]))]);
        assert_eq!(attached, 2, "parent arrival must solidify the child");
        assert_eq!(r.buffered(), 0);
        assert!(r.contains(5) && r.contains(7));
        // Parent precedes child in the local order.
        assert!(r.local_id(5).unwrap() < r.local_id(7).unwrap());
    }

    #[test]
    fn apply_orders_by_arrival_time_then_id() {
        let mut a = fresh();
        a.apply(vec![
            envelope(2.0, msg(5, &[0])),
            envelope(1.0, msg(6, &[0])),
        ]);
        assert!(a.local_id(6).unwrap() < a.local_id(5).unwrap());

        let mut b = fresh();
        b.apply(vec![
            envelope(1.0, msg(5, &[0])),
            envelope(1.0, msg(6, &[0])),
        ]);
        assert!(b.local_id(5).unwrap() < b.local_id(6).unwrap());
    }

    #[test]
    fn duplicate_deliveries_are_dropped() {
        let mut r = fresh();
        r.apply(vec![envelope(1.0, msg(5, &[0]))]);
        let attached = r.apply(vec![envelope(2.0, msg(5, &[0]))]);
        assert_eq!(attached, 0);
        assert_eq!(r.tangle().len(), 2);
    }

    #[test]
    fn backlog_counts_future_and_unsolid() {
        let mut r = fresh();
        r.apply(vec![envelope(1.0, msg(9, &[5]))]); // buffered, parent missing
        let in_flight = [
            envelope(10.0, msg(5, &[0])), // future: would solidify 9
            envelope(1.5, msg(11, &[9])), // due but chain not solid
        ];
        assert_eq!(r.backlog(&in_flight, 2.0), 3);
        // Once 5 is due, the whole chain becomes deliverable.
        assert_eq!(r.backlog(&in_flight, 10.0), 0);
        assert_eq!(r.backlog(&[], 0.0), 1, "buffered child alone");
    }

    #[test]
    fn snapshot_messages_exclude_genesis_and_known() {
        let mut r = fresh();
        r.insert(&msg(5, &[0])).unwrap();
        r.insert(&msg(9, &[5])).unwrap();
        let all = r.snapshot_messages(&HashSet::new());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, 5);
        assert_eq!(all[1].id, 9);
        assert_eq!(all[1].parents, vec![5]);
        let have: HashSet<u64> = [5u64].into_iter().collect();
        let missing = r.snapshot_messages(&have);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].id, 9);
    }

    #[test]
    fn late_join_snapshot_equals_replayed_gossip() {
        // Satellite: a replica synced from a snapshot must equal one
        // built from the original gossip stream, message by message.
        let stream = [
            msg(5, &[0]),
            msg(6, &[0, 5]),
            msg(9, &[6, 5]),
            msg(12, &[9, 9]),
        ];
        let mut replayed = fresh();
        for (i, m) in stream.iter().enumerate() {
            replayed.apply(vec![envelope(i as f64, m.clone())]);
        }
        let mut synced = fresh();
        let batch = replayed.snapshot_messages(&HashSet::new());
        synced.apply(vec![Envelope {
            at: 0.0,
            message: GossipMessage::Snapshot(batch),
        }]);
        assert_eq!(synced.tangle().len(), replayed.tangle().len());
        assert_eq!(synced.digest(), replayed.digest());
        assert_eq!(synced.network_ids(), replayed.network_ids());
        assert_eq!(synced.tangle().edges(), replayed.tangle().edges());
    }

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let mut a = fresh();
        a.insert(&msg(5, &[0])).unwrap();
        a.insert(&msg(6, &[0])).unwrap();
        let mut b = fresh();
        b.insert(&msg(6, &[0])).unwrap();
        b.insert(&msg(5, &[0])).unwrap();
        assert_eq!(a.digest(), b.digest(), "same set, different order");

        let mut c = fresh();
        c.insert(&msg(5, &[0])).unwrap();
        assert_ne!(a.digest(), c.digest(), "different sets must differ");
    }
}
