//! A minimal CSV writer for experiment results (no external dependencies).
//!
//! The experiment harness in `dagfl-bench` emits every figure/table as a
//! CSV series; this module provides the shared formatting so all outputs
//! are consistent and RFC-4180-safe for the values we produce.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Escapes one CSV field (quotes fields containing separators or quotes).
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Formats a header and rows as a CSV document.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn to_csv_string(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let header_line: Vec<String> = header.iter().map(|h| escape_field(h)).collect();
    let _ = writeln!(out, "{}", header_line.join(","));
    for row in rows {
        assert_eq!(
            row.len(),
            header.len(),
            "row width {} does not match header width {}",
            row.len(),
            header.len()
        );
        let fields: Vec<String> = row.iter().map(|f| escape_field(f)).collect();
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Writes a CSV document to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = File::create(path)?;
    file.write_all(to_csv_string(header, rows).as_bytes())
}

/// Formats an `f32` with enough precision for plotting.
pub fn fmt_f32(v: f32) -> String {
    format!("{v:.6}")
}

/// Formats an `f64` with enough precision for plotting.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_are_untouched() {
        assert_eq!(escape_field("abc"), "abc");
        assert_eq!(escape_field("1.5"), "1.5");
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
    }

    #[test]
    fn quotes_are_doubled() {
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn document_layout() {
        let csv = to_csv_string(
            &["round", "accuracy"],
            &[
                vec!["0".into(), "0.5".into()],
                vec!["1".into(), "0.75".into()],
            ],
        );
        assert_eq!(csv, "round,accuracy\n0,0.5\n1,0.75\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        to_csv_string(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("dagfl_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_csv(&path, &["x"], &[vec!["1".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f32(0.5), "0.500000");
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333333");
    }
}
