//! Property-based tests of the tangle invariants.

use dagfl_tangle::{RandomWalker, Tangle, UniformBias};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random tangle from a growth script: each entry is a pair of
/// pseudo-parent selectors into the already-attached transactions.
fn build_tangle(script: &[(u8, u8)]) -> Tangle<usize> {
    let mut tangle = Tangle::new(0);
    let mut ids = vec![tangle.genesis()];
    for (i, &(a, b)) in script.iter().enumerate() {
        let p1 = ids[a as usize % ids.len()];
        let p2 = ids[b as usize % ids.len()];
        let id = tangle.attach(i + 1, &[p1, p2]).expect("parents exist");
        ids.push(id);
    }
    tangle
}

proptest! {
    #[test]
    fn parents_always_precede_children(script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let tangle = build_tangle(&script);
        for tx in tangle.iter() {
            for p in tx.parents() {
                prop_assert!(p.index() < tx.id().index(), "acyclicity violated");
            }
        }
    }

    #[test]
    fn tips_are_exactly_childless_transactions(script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let tangle = build_tangle(&script);
        let tips = tangle.tips();
        for tx in tangle.iter() {
            let childless = tangle.children(tx.id()).unwrap().is_empty();
            prop_assert_eq!(tips.contains(&tx.id()), childless);
        }
    }

    #[test]
    fn genesis_cumulative_weight_counts_everything(script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let tangle = build_tangle(&script);
        let w = tangle.cumulative_weights();
        // Every transaction (transitively) approves the genesis.
        prop_assert_eq!(w[0], tangle.len() as u64);
    }

    #[test]
    fn cumulative_weight_matches_future_cone(script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..30)) {
        let tangle = build_tangle(&script);
        let w = tangle.cumulative_weights();
        for tx in tangle.iter() {
            let cone = tangle.future_cone(tx.id()).unwrap();
            prop_assert_eq!(w[tx.id().index() as usize], cone.len() as u64);
        }
    }

    #[test]
    fn past_cone_contains_genesis(script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..30)) {
        let tangle = build_tangle(&script);
        for tx in tangle.iter() {
            let cone = tangle.past_cone(tx.id()).unwrap();
            prop_assert!(cone.contains(&tangle.genesis()));
            prop_assert!(cone.contains(&tx.id()));
        }
    }

    #[test]
    fn walks_always_terminate_at_tips(
        script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        seed in any::<u64>(),
    ) {
        let tangle = build_tangle(&script);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = RandomWalker::new()
            .walk(&tangle, tangle.genesis(), &mut UniformBias, &mut rng)
            .unwrap();
        prop_assert!(tangle.is_tip(result.tip));
        prop_assert!(result.steps <= tangle.len());
    }

    #[test]
    fn depths_decrease_along_approvals(script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let tangle = build_tangle(&script);
        let depths = tangle.depths_from_tips();
        for tx in tangle.iter() {
            for p in tx.parents() {
                prop_assert!(
                    depths[p.index() as usize] > depths[tx.id().index() as usize],
                    "parent must be deeper than child"
                );
            }
        }
    }
}
