//! Thread-safe shared handle over a [`Tangle`].

use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::{Tangle, TangleError, TxId};

/// A cheap-to-clone, thread-safe handle to a [`Tangle`].
///
/// In the concurrent round simulation, many clients walk the tangle in
/// parallel (read locks) and publish their trained models at the end of the
/// round (short write locks) — mirroring how a real deployment's local view
/// of the DAG is read-mostly.
///
/// # Example
///
/// ```
/// use dagfl_tangle::SharedTangle;
///
/// # fn main() -> Result<(), dagfl_tangle::TangleError> {
/// let shared = SharedTangle::new("genesis");
/// let genesis = shared.read().genesis();
/// let handle = shared.clone();
/// let tx = handle.attach("update", &[genesis])?;
/// assert_eq!(shared.read().tips(), vec![tx]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SharedTangle<P> {
    inner: Arc<RwLock<Tangle<P>>>,
}

impl<P> Clone for SharedTangle<P> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<P> SharedTangle<P> {
    /// Creates a shared tangle with the given genesis payload.
    pub fn new(genesis_payload: P) -> Self {
        Self {
            inner: Arc::new(RwLock::new(Tangle::new(genesis_payload))),
        }
    }

    /// Wraps an existing tangle.
    pub fn from_tangle(tangle: Tangle<P>) -> Self {
        Self {
            inner: Arc::new(RwLock::new(tangle)),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, Tangle<P>> {
        self.inner.read()
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, Tangle<P>> {
        self.inner.write()
    }

    /// Convenience: attaches a transaction under a short-lived write lock.
    ///
    /// # Errors
    ///
    /// Same as [`Tangle::attach`].
    pub fn attach(&self, payload: P, parents: &[TxId]) -> Result<TxId, TangleError> {
        self.write().attach(payload, parents)
    }

    /// Convenience: attaches a transaction with issuer/round metadata.
    ///
    /// # Errors
    ///
    /// Same as [`Tangle::attach_with_meta`].
    pub fn attach_with_meta(
        &self,
        payload: P,
        parents: &[TxId],
        issuer: Option<u32>,
        round: u32,
    ) -> Result<TxId, TangleError> {
        self.write()
            .attach_with_meta(payload, parents, issuer, round)
    }

    /// Convenience: current number of transactions.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Always `false`: a tangle contains at least the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let shared = SharedTangle::new(());
        let genesis = shared.read().genesis();
        let other = shared.clone();
        other.attach((), &[genesis]).unwrap();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn concurrent_attach_from_threads() {
        let shared = SharedTangle::new(());
        let genesis = shared.read().genesis();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = shared.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        handle.attach((), &[genesis]).unwrap();
                    }
                });
            }
        });
        assert_eq!(shared.len(), 1 + 8 * 50);
        // All children recorded exactly once.
        assert_eq!(shared.read().children(genesis).unwrap().len(), 400);
    }

    #[test]
    fn from_tangle_preserves_contents() {
        let mut t = Tangle::new(7u32);
        let g = t.genesis();
        t.attach(8, &[g]).unwrap();
        let shared = SharedTangle::from_tangle(t);
        assert_eq!(shared.len(), 2);
        assert!(!shared.is_empty());
    }
}
