//! The random-walk tip-selection engine.
//!
//! A walk starts at some transaction and repeatedly steps to one of the
//! current transaction's approvers (children), chosen by a pluggable
//! [`WalkBias`], until it reaches a tip. This inverts the approval edges:
//! the walk moves forward in time, towards newer transactions.

use rand::Rng;

use crate::read::TangleRead;
use crate::{Tangle, TangleError, TxId};

/// Outcome of a random walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The tip the walk terminated at.
    pub tip: TxId,
    /// Number of steps taken (edges traversed).
    pub steps: usize,
    /// Total number of candidate transactions whose weight was computed.
    ///
    /// For the paper's accuracy bias every candidate costs one model
    /// evaluation, so this is the dominant cost driver of the scalability
    /// experiment (Figure 15).
    pub candidates_evaluated: usize,
}

/// A strategy assigning transition weights to the children reachable in one
/// step of the walk.
///
/// Generic over the storage backend `T` (defaulting to [`Tangle`]) so the
/// same bias drives walks over the single-owner store, the concurrent
/// [`ShardedTangle`](crate::ShardedTangle) and replica views alike.
pub trait WalkBias<P, T: TangleRead<P> = Tangle<P>> {
    /// Returns one non-negative, unnormalised weight per candidate.
    ///
    /// Returning all zeros (or non-finite values) makes the walker fall
    /// back to a uniform choice.
    fn weights(&mut self, tangle: &T, current: TxId, candidates: &[TxId]) -> Vec<f32>;

    /// Whether the walk should terminate at `current` even though it has
    /// approvers.
    ///
    /// The default never stops early (classic tip selection). Quality-aware
    /// biases can override this to refuse stepping down an accuracy cliff —
    /// e.g. when every approver is a flooding attacker's garbage update —
    /// and approve the current transaction instead, which tangle semantics
    /// permit.
    fn should_stop(&mut self, tangle: &T, current: TxId, candidates: &[TxId]) -> bool {
        let _ = (tangle, current, candidates);
        false
    }
}

/// Unbiased tip selection: every child is equally likely.
///
/// This is the "random tip selector" baseline of the paper's poisoning
/// evaluation (Figure 12).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformBias;

impl<P, T: TangleRead<P>> WalkBias<P, T> for UniformBias {
    fn weights(&mut self, _tangle: &T, _current: TxId, candidates: &[TxId]) -> Vec<f32> {
        vec![1.0; candidates.len()]
    }
}

/// Classic IOTA MCMC bias: transition weights are
/// `exp(alpha * (w_child - w_max))` over cumulative weights.
///
/// Cumulative weights are recomputed lazily whenever the tangle has grown
/// since the last query.
#[derive(Debug, Clone)]
pub struct CumulativeWeightBias {
    alpha: f32,
    cache: Vec<u64>,
}

impl CumulativeWeightBias {
    /// Creates a bias with the given randomness parameter `alpha`
    /// (larger ⇒ more deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f32) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative, got {alpha}"
        );
        Self {
            alpha,
            cache: Vec::new(),
        }
    }

    /// The randomness parameter.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl<P, T: TangleRead<P>> WalkBias<P, T> for CumulativeWeightBias {
    fn weights(&mut self, tangle: &T, _current: TxId, candidates: &[TxId]) -> Vec<f32> {
        if self.cache.len() != tangle.len() {
            self.cache = tangle.cumulative_weights();
        }
        let ws: Vec<f32> = candidates
            .iter()
            .map(|c| self.cache[c.index() as usize] as f32)
            .collect();
        let max = ws.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        ws.iter().map(|&w| (self.alpha * (w - max)).exp()).collect()
    }
}

/// Samples an index proportionally to `weights`.
///
/// Falls back to a uniform choice when weights are all zero or contain
/// non-finite values.
///
/// # Panics
///
/// Panics if `weights` is empty.
pub fn weighted_choice<R: Rng>(weights: &[f32], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "weighted choice over empty set");
    let valid = weights.iter().all(|w| w.is_finite() && *w >= 0.0);
    let total: f32 = if valid { weights.iter().sum() } else { 0.0 };
    if !valid || total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Runs biased random walks over a [`Tangle`].
#[derive(Debug, Clone, Copy)]
pub struct RandomWalker {
    max_steps: usize,
}

impl Default for RandomWalker {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomWalker {
    /// Creates a walker with a generous safety bound on steps.
    pub fn new() -> Self {
        Self {
            max_steps: 1_000_000,
        }
    }

    /// Limits the walk to at most `max_steps` edges (it then returns the
    /// transaction reached so far even if it is not a tip).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Walks from `start` towards the tips, choosing among approvers with
    /// `bias`, and returns the tip reached.
    ///
    /// Generic over any [`TangleRead`] backend; the step sequence and RNG
    /// draws are identical for equivalent tangle contents regardless of
    /// the storage implementation.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::InvalidWalkStart`] if `start` is not part of
    /// the tangle.
    pub fn walk<P, T: TangleRead<P>, B: WalkBias<P, T>, R: Rng>(
        &self,
        tangle: &T,
        start: TxId,
        bias: &mut B,
        rng: &mut R,
    ) -> Result<WalkResult, TangleError> {
        if !tangle.contains(start) {
            return Err(TangleError::InvalidWalkStart(start));
        }
        let mut current = start;
        let mut steps = 0;
        let mut candidates_evaluated = 0;
        let mut children: Vec<TxId> = Vec::new();
        loop {
            tangle.children_into(current, &mut children)?;
            if children.is_empty()
                || steps >= self.max_steps
                || bias.should_stop(tangle, current, &children)
            {
                return Ok(WalkResult {
                    tip: current,
                    steps,
                    candidates_evaluated,
                });
            }
            let weights = bias.weights(tangle, current, &children);
            debug_assert_eq!(weights.len(), children.len());
            candidates_evaluated += children.len();
            let idx = weighted_choice(&weights, rng);
            current = children[idx];
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> Tangle<usize> {
        let mut t = Tangle::new(0);
        let mut prev = t.genesis();
        for i in 1..n {
            prev = t.attach(i, &[prev]).unwrap();
        }
        t
    }

    #[test]
    fn walk_on_chain_reaches_the_tip() {
        let t = chain(10);
        let mut rng = StdRng::seed_from_u64(0);
        let result = RandomWalker::new()
            .walk(&t, t.genesis(), &mut UniformBias, &mut rng)
            .unwrap();
        assert_eq!(result.tip, TxId(9));
        assert_eq!(result.steps, 9);
        assert_eq!(result.candidates_evaluated, 9);
    }

    #[test]
    fn walk_from_tip_is_a_noop() {
        let t = chain(3);
        let mut rng = StdRng::seed_from_u64(0);
        let result = RandomWalker::new()
            .walk(&t, TxId(2), &mut UniformBias, &mut rng)
            .unwrap();
        assert_eq!(result.tip, TxId(2));
        assert_eq!(result.steps, 0);
    }

    #[test]
    fn walk_rejects_unknown_start() {
        let t = chain(2);
        let mut rng = StdRng::seed_from_u64(0);
        let err = RandomWalker::new()
            .walk(&t, TxId(9), &mut UniformBias, &mut rng)
            .unwrap_err();
        assert_eq!(err, TangleError::InvalidWalkStart(TxId(9)));
    }

    #[test]
    fn max_steps_truncates_walk() {
        let t = chain(100);
        let mut rng = StdRng::seed_from_u64(0);
        let result = RandomWalker::new()
            .with_max_steps(5)
            .walk(&t, t.genesis(), &mut UniformBias, &mut rng)
            .unwrap();
        assert_eq!(result.steps, 5);
        assert_eq!(result.tip, TxId(5));
    }

    #[test]
    fn uniform_walk_visits_both_branches() {
        // genesis with two long chains; over many walks both tips appear.
        let mut t = Tangle::new(());
        let g = t.genesis();
        let mut left = t.attach((), &[g]).unwrap();
        let mut right = t.attach((), &[g]).unwrap();
        for _ in 0..3 {
            left = t.attach((), &[left]).unwrap();
            right = t.attach((), &[right]).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let r = RandomWalker::new()
                .walk(&t, g, &mut UniformBias, &mut rng)
                .unwrap();
            seen.insert(r.tip);
        }
        assert_eq!(seen.len(), 2, "both branch tips should be reachable");
    }

    #[test]
    fn high_alpha_cumulative_bias_follows_heavy_branch() {
        // Heavy branch has many approvers; with alpha -> large the walk
        // should deterministically follow it at the first fork.
        let mut t = Tangle::new(());
        let g = t.genesis();
        let heavy = t.attach((), &[g]).unwrap();
        let _light = t.attach((), &[g]).unwrap();
        let mut prev = heavy;
        for _ in 0..10 {
            prev = t.attach((), &[prev]).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut bias = CumulativeWeightBias::new(100.0);
        for _ in 0..20 {
            let r = RandomWalker::new()
                .walk(&t, g, &mut bias, &mut rng)
                .unwrap();
            // The heavy chain's tip is the last attached transaction.
            assert_eq!(r.tip, prev);
        }
    }

    #[test]
    fn zero_alpha_cumulative_bias_is_uniform() {
        let t = chain(2);
        let mut bias = CumulativeWeightBias::new(0.0);
        let w = WalkBias::<usize>::weights(&mut bias, &t, t.genesis(), &[TxId(1)]);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_panics() {
        CumulativeWeightBias::new(-1.0);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[weighted_choice(&[1.0, 0.0, 3.0], &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "counts: {counts:?}");
    }

    #[test]
    fn weighted_choice_zero_weights_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(weighted_choice(&[0.0, 0.0, 0.0], &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn weighted_choice_nan_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(weighted_choice(&[f32::NAN, 1.0], &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn weighted_choice_empty_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        weighted_choice(&[], &mut rng);
    }
}
