//! A concurrent tangle whose read path never takes a global lock.
//!
//! # Layout
//!
//! Transactions live in a fixed directory of append-only **segments**:
//! `segments[s]` is lazily allocated as a boxed slice of
//! [`OnceLock`] slots, so a transaction written once is readable
//! forever through a plain `&self` reference — no guard, no epoch, no
//! copy. The mutable index (children adjacency and the tip set) is
//! split across `N` **shards** guarded by independent mutexes, with
//! transaction `id` assigned to shard `id % N`; an attach only touches
//! the shards of its parents and of the new transaction, so unrelated
//! attaches and reads of untouched shards never contend.
//!
//! Writers serialize on a single `append` mutex (id assignment must be
//! sequential for ids to stay dense topological indices), but readers
//! never take it: lookups go straight to the slot, and the published
//! [`ShardedTangle::len`] (release-stored after the slot is
//! initialised) bounds what they can see.
//!
//! # Consistency
//!
//! Reads concurrent with an in-flight attach are linearized at the
//! attach's *completion* for the index (children lists and the tip set
//! may already reflect a transaction whose id is not yet published via
//! `len`), while `len`-bounded enumeration (`iter`, weights, depths)
//! sees only fully published transactions. Both simulators only read
//! from quiescent tangles — walks happen in a read-only phase,
//! publications in a serial phase — and the equivalence tests below pin
//! sequential behaviour to [`Tangle`] exactly.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::read::TangleRead;
use crate::{Tangle, TangleError, TangleStats, Transaction, TxId};

/// Transactions per lazily-allocated segment.
const SEGMENT_SIZE: usize = 1024;
/// Fixed size of the segment directory; the capacity ceiling is
/// `SEGMENT_SIZE * MAX_SEGMENTS` = 4 194 304 transactions, far beyond
/// the 10k-client scenarios this store targets.
const MAX_SEGMENTS: usize = 4096;
/// Default number of index shards.
const DEFAULT_SHARDS: usize = 16;

/// A transaction plus its height (longest path from the genesis),
/// maintained incrementally so `stats()` needs no full-graph scan.
#[derive(Debug)]
struct StoredTx<P> {
    tx: Transaction<P>,
    height: u32,
}

/// The mutable per-shard index: children adjacency (indexed by
/// `id / shard_count`) and the shard's slice of the tip set.
#[derive(Debug, Default)]
struct ShardState {
    children: Vec<Vec<TxId>>,
    tips: HashSet<TxId>,
}

/// One lazily-allocated run of `SEGMENT_SIZE` write-once slots.
type Segment<P> = Box<[OnceLock<StoredTx<P>>]>;

/// An append-only DAG store sharing [`Tangle`]'s contract — dense
/// sequential ids, parents before children — but safe to read from any
/// number of threads without a global lock, and to append to through
/// `&self`.
///
/// # Example
///
/// ```
/// use dagfl_tangle::{ShardedTangle, TangleRead};
///
/// # fn main() -> Result<(), dagfl_tangle::TangleError> {
/// let tangle = ShardedTangle::new(0u32);
/// let genesis = tangle.genesis();
/// // Appends go through `&self`: no `mut`, no external lock.
/// let a = tangle.attach(1, &[genesis])?;
/// let b = tangle.attach(2, &[genesis])?;
/// let c = tangle.attach(3, &[a, b])?;
/// assert_eq!(tangle.tips(), vec![c]);
/// assert_eq!(tangle.children(genesis)?, vec![a, b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedTangle<P> {
    /// Lazily-allocated slot segments; a slot, once set, is immutable.
    segments: Box<[OnceLock<Segment<P>>]>,
    /// Published transaction count; release-stored after the slot and
    /// index updates of the newest transaction are complete.
    len: AtomicUsize,
    /// Serializes id assignment across appenders. Readers never take it.
    append: Mutex<()>,
    /// The sharded mutable index; transaction `id` maps to shard
    /// `id % shards.len()`.
    shards: Box<[Mutex<ShardState>]>,
    /// Incremental counters backing `stats()`.
    edges: AtomicUsize,
    max_height: AtomicU32,
}

impl<P> ShardedTangle<P> {
    /// Creates a sharded tangle containing only the genesis transaction,
    /// with the default shard count.
    pub fn new(genesis_payload: P) -> Self {
        Self::with_shards(genesis_payload, DEFAULT_SHARDS)
    }

    /// Creates a sharded tangle with an explicit shard count (clamped to
    /// at least 1).
    pub fn with_shards(genesis_payload: P, shards: usize) -> Self {
        let nshards = shards.max(1);
        let this = Self {
            segments: (0..MAX_SEGMENTS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
            append: Mutex::new(()),
            shards: (0..nshards)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            edges: AtomicUsize::new(0),
            max_height: AtomicU32::new(0),
        };
        this.store(
            0,
            StoredTx {
                tx: Transaction {
                    id: TxId(0),
                    parents: Vec::new(),
                    payload: genesis_payload,
                    issuer: None,
                    round: 0,
                },
                height: 0,
            },
        );
        {
            let mut shard = this.shards[0].lock();
            shard.children.push(Vec::new());
            shard.tips.insert(TxId(0));
        }
        this.len.store(1, Ordering::Release);
        this
    }

    /// Rebuilds a sharded tangle from a plain [`Tangle`], preserving ids
    /// and metadata.
    pub fn from_tangle(tangle: Tangle<P>) -> Self
    where
        P: Clone,
    {
        let mut iter = tangle.iter();
        let genesis = iter.next().expect("tangle is never empty");
        let this = Self::new(genesis.payload().clone());
        for tx in iter {
            this.attach_with_meta(tx.payload().clone(), tx.parents(), tx.issuer(), tx.round())
                .expect("source tangle is well-formed");
        }
        this
    }

    /// Materialises the current contents as a plain [`Tangle`] (for DOT
    /// export, snapshots and other single-owner consumers).
    pub fn to_tangle(&self) -> Tangle<P>
    where
        P: Clone,
    {
        let mut iter = self.iter();
        let genesis = iter.next().expect("tangle is never empty");
        let mut out = Tangle::new(genesis.payload().clone());
        for tx in iter {
            out.attach_with_meta(tx.payload().clone(), tx.parents(), tx.issuer(), tx.round())
                .expect("sharded tangle is well-formed");
        }
        out
    }

    /// The id of the genesis transaction.
    pub fn genesis(&self) -> TxId {
        TxId(0)
    }

    /// Number of published transactions, including the genesis.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Always `false`: a tangle contains at least the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of index shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: TxId) -> usize {
        id.0 as usize % self.shards.len()
    }

    fn slot_in_shard(&self, id: TxId) -> usize {
        id.0 as usize / self.shards.len()
    }

    /// Writes `stored` into slot `index`, allocating its segment on
    /// first touch. Panics if the slot was already written (ids are
    /// assigned once, under the append lock).
    fn store(&self, index: usize, stored: StoredTx<P>) {
        let segment = self.segments[index / SEGMENT_SIZE]
            .get_or_init(|| (0..SEGMENT_SIZE).map(|_| OnceLock::new()).collect());
        let fresh = segment[index % SEGMENT_SIZE].set(stored).is_ok();
        assert!(fresh, "transaction slot {index} written twice");
    }

    /// Reads the slot of a known-valid id.
    fn stored(&self, id: TxId) -> &StoredTx<P> {
        let index = id.0 as usize;
        self.segments[index / SEGMENT_SIZE]
            .get()
            .expect("segment of a published transaction exists")[index % SEGMENT_SIZE]
            .get()
            .expect("slot of a published transaction is initialised")
    }

    /// Attaches a new transaction approving `parents`. Takes `&self`:
    /// appenders serialize internally on the append mutex.
    ///
    /// Duplicate parent ids are collapsed, exactly as in
    /// [`Tangle::attach`].
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::MissingParents`] for an empty parent list
    /// and [`TangleError::UnknownParent`] if a parent does not exist.
    pub fn attach(&self, payload: P, parents: &[TxId]) -> Result<TxId, TangleError> {
        self.attach_with_meta(payload, parents, None, 0)
    }

    /// Attaches a new transaction recording the publishing client and
    /// round.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedTangle::attach`]. Panics only if the fixed
    /// capacity ceiling (`SEGMENT_SIZE * MAX_SEGMENTS` ≈ 4.2 M
    /// transactions) is exceeded.
    pub fn attach_with_meta(
        &self,
        payload: P,
        parents: &[TxId],
        issuer: Option<u32>,
        round: u32,
    ) -> Result<TxId, TangleError> {
        if parents.is_empty() {
            return Err(TangleError::MissingParents);
        }
        let _guard = self.append.lock();
        let len = self.len.load(Ordering::Acquire);
        // Validate fully before mutating anything: a failed attach must
        // leave no trace, like `Tangle::attach_with_meta`.
        let mut unique: Vec<TxId> = Vec::with_capacity(parents.len());
        for &p in parents {
            if p.0 as usize >= len {
                return Err(TangleError::UnknownParent(p));
            }
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        assert!(
            len < SEGMENT_SIZE * MAX_SEGMENTS,
            "sharded tangle capacity ({} transactions) exceeded",
            SEGMENT_SIZE * MAX_SEGMENTS
        );
        let id = TxId(len as u64);
        let height = 1 + unique
            .iter()
            .map(|&p| self.stored(p).height)
            .max()
            .expect("parents are non-empty");
        // Slot first: anything the index can point at must be readable.
        self.store(
            len,
            StoredTx {
                tx: Transaction {
                    id,
                    parents: unique.clone(),
                    payload,
                    issuer,
                    round,
                },
                height,
            },
        );
        for &p in &unique {
            let mut shard = self.shards[self.shard_of(p)].lock();
            let slot = self.slot_in_shard(p);
            shard.children[slot].push(id);
            shard.tips.remove(&p);
        }
        {
            let mut shard = self.shards[self.shard_of(id)].lock();
            debug_assert_eq!(shard.children.len(), self.slot_in_shard(id));
            shard.children.push(Vec::new());
            shard.tips.insert(id);
        }
        self.edges.fetch_add(unique.len(), Ordering::Relaxed);
        self.max_height.fetch_max(height, Ordering::Relaxed);
        self.len.store(len + 1, Ordering::Release);
        Ok(id)
    }

    /// Looks up a transaction by id. The returned reference is a plain
    /// `&Transaction` — slots are immutable once written, so no guard
    /// outlives the call.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    pub fn get(&self, id: TxId) -> Result<&Transaction<P>, TangleError> {
        if (id.0 as usize) < self.len() {
            Ok(&self.stored(id).tx)
        } else {
            Err(TangleError::UnknownTransaction(id))
        }
    }

    /// The direct approvers of `id`, in attachment order.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    pub fn children(&self, id: TxId) -> Result<Vec<TxId>, TangleError> {
        if (id.0 as usize) >= self.len() {
            return Err(TangleError::UnknownTransaction(id));
        }
        let shard = self.shards[self.shard_of(id)].lock();
        Ok(shard.children[self.slot_in_shard(id)].clone())
    }

    /// Whether `id` currently has no approvers.
    pub fn is_tip(&self, id: TxId) -> bool {
        if (id.0 as usize) >= self.len() {
            return false;
        }
        let shard = self.shards[self.shard_of(id)].lock();
        shard.tips.contains(&id)
    }

    /// All current tips, sorted by id for determinism.
    pub fn tips(&self) -> Vec<TxId> {
        let len = self.len();
        let mut tips: Vec<TxId> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            tips.extend(shard.tips.iter().copied().filter(|t| (t.0 as usize) < len));
        }
        tips.sort();
        tips
    }

    /// Iterator over all published transactions in insertion
    /// (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction<P>> {
        let len = self.len();
        (0..len).map(move |i| &self.stored(TxId(i as u64)).tx)
    }

    /// Structural summary statistics, computed from the incremental
    /// counters in `O(tips)` — no full-graph re-scan.
    pub fn stats(&self) -> TangleStats {
        let transactions = self.len();
        let tips = self.tips().len();
        let edges = self.edges.load(Ordering::Relaxed);
        let max_depth = self.max_height.load(Ordering::Relaxed);
        // Every non-genesis transaction has at least one parent, so the
        // non-genesis count is simply len - 1.
        let non_genesis = transactions - 1;
        let non_tips = transactions - tips;
        TangleStats {
            transactions,
            tips,
            edges,
            max_depth,
            mean_parents: if non_genesis == 0 {
                0.0
            } else {
                edges as f64 / non_genesis as f64
            },
            mean_children: if non_tips == 0 {
                0.0
            } else {
                edges as f64 / non_tips as f64
            },
        }
    }
}

impl<P: Clone> ShardedTangle<P> {
    /// Exports the current contents as a snapshot, identical to
    /// [`Tangle::snapshot`] on the equivalent single-owner tangle.
    pub fn snapshot(&self) -> crate::TangleSnapshot<P> {
        crate::TangleSnapshot::from_records(self.iter().map(crate::SnapshotRecord::from).collect())
    }
}

impl<P> TangleRead<P> for ShardedTangle<P> {
    fn len(&self) -> usize {
        ShardedTangle::len(self)
    }

    fn payload_of(&self, id: TxId) -> Result<&P, TangleError> {
        Ok(self.get(id)?.payload())
    }

    fn issuer_of(&self, id: TxId) -> Result<Option<u32>, TangleError> {
        Ok(self.get(id)?.issuer())
    }

    fn round_of(&self, id: TxId) -> Result<u32, TangleError> {
        Ok(self.get(id)?.round())
    }

    fn parents_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
        let parents = self.get(id)?.parents();
        out.clear();
        out.extend_from_slice(parents);
        Ok(())
    }

    fn children_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
        if (id.0 as usize) >= ShardedTangle::len(self) {
            return Err(TangleError::UnknownTransaction(id));
        }
        let shard = self.shards[self.shard_of(id)].lock();
        out.clear();
        out.extend_from_slice(&shard.children[self.slot_in_shard(id)]);
        Ok(())
    }

    fn is_tip(&self, id: TxId) -> bool {
        ShardedTangle::is_tip(self, id)
    }

    fn tips(&self) -> Vec<TxId> {
        ShardedTangle::tips(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Mirrors a random attach sequence into both stores and asserts
    /// they are indistinguishable through every read API.
    fn assert_equivalent(plain: &Tangle<u64>, sharded: &ShardedTangle<u64>) {
        assert_eq!(plain.len(), sharded.len());
        assert_eq!(plain.tips(), sharded.tips());
        assert_eq!(plain.stats(), sharded.stats());
        for tx in plain.iter() {
            let other = sharded.get(tx.id()).unwrap();
            assert_eq!(tx.parents(), other.parents());
            assert_eq!(tx.payload(), other.payload());
            assert_eq!(tx.issuer(), other.issuer());
            assert_eq!(tx.round(), other.round());
            assert_eq!(
                plain.children(tx.id()).unwrap(),
                sharded.children(tx.id()).unwrap().as_slice()
            );
            assert_eq!(plain.is_tip(tx.id()), sharded.is_tip(tx.id()));
        }
        assert_eq!(
            TangleRead::cumulative_weights(plain),
            TangleRead::cumulative_weights(sharded)
        );
        assert_eq!(
            TangleRead::depths_from_tips(plain),
            TangleRead::depths_from_tips(sharded)
        );
    }

    fn random_grow(seed: u64, n: usize, shards: usize) -> (Tangle<u64>, ShardedTangle<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plain = Tangle::new(0u64);
        let sharded = ShardedTangle::with_shards(0u64, shards);
        for i in 1..n {
            let len = plain.len() as u64;
            let a = TxId(rng.gen_range(0..len));
            let b = TxId(rng.gen_range(0..len));
            let issuer = Some(rng.gen_range(0..7u32));
            let round = rng.gen_range(0..5);
            let x = plain
                .attach_with_meta(i as u64, &[a, b], issuer, round)
                .unwrap();
            let y = sharded
                .attach_with_meta(i as u64, &[a, b], issuer, round)
                .unwrap();
            assert_eq!(x, y);
        }
        (plain, sharded)
    }

    #[test]
    fn sequential_growth_is_indistinguishable_from_tangle() {
        for seed in 0..4 {
            for shards in [1, 3, 16] {
                let (plain, sharded) = random_grow(seed, 200, shards);
                assert_equivalent(&plain, &sharded);
            }
        }
    }

    #[test]
    fn new_sharded_tangle_has_single_tip_genesis() {
        let t = ShardedTangle::new(());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.tips(), vec![t.genesis()]);
        assert!(t.get(t.genesis()).unwrap().is_genesis());
        assert!(t.shard_count() >= 1);
    }

    #[test]
    fn attach_validation_matches_tangle() {
        let t = ShardedTangle::new(());
        assert_eq!(t.attach((), &[]).unwrap_err(), TangleError::MissingParents);
        assert_eq!(
            t.attach((), &[TxId(5)]).unwrap_err(),
            TangleError::UnknownParent(TxId(5))
        );
        // A failed attach leaves no trace.
        assert_eq!(t.len(), 1);
        assert_eq!(t.tips(), vec![TxId(0)]);
        // Duplicate parents collapse.
        let g = t.genesis();
        let a = t.attach((), &[g, g]).unwrap();
        assert_eq!(t.get(a).unwrap().parents(), &[g]);
        assert_eq!(t.children(g).unwrap(), vec![a]);
    }

    #[test]
    fn unknown_ids_error() {
        let t = ShardedTangle::new(());
        assert!(t.get(TxId(3)).is_err());
        assert!(t.children(TxId(3)).is_err());
        assert!(!t.is_tip(TxId(3)));
    }

    #[test]
    fn concurrent_attach_from_threads_preserves_counts() {
        let t = ShardedTangle::new(());
        let genesis = t.genesis();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = &t;
                scope.spawn(move || {
                    for _ in 0..50 {
                        t.attach((), &[genesis]).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.len(), 1 + 8 * 50);
        assert_eq!(t.children(genesis).unwrap().len(), 400);
        assert_eq!(t.tips().len(), 400);
        let stats = t.stats();
        assert_eq!(stats.edges, 400);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn concurrent_reads_during_growth_are_safe_and_bounded() {
        let t = ShardedTangle::new(0u64);
        std::thread::scope(|scope| {
            let writer = &t;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(3);
                for i in 1..400u64 {
                    let p = TxId(rng.gen_range(0..writer.len() as u64));
                    writer.attach(i, &[p]).unwrap();
                }
            });
            for _ in 0..4 {
                let reader = &t;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let len = reader.len();
                        // Everything below the published length is readable.
                        for i in 0..len {
                            let tx = reader.get(TxId(i as u64)).unwrap();
                            assert!(tx.id().index() < len as u64);
                        }
                        let _ = reader.tips();
                        let _ = reader.stats();
                    }
                });
            }
        });
        // Quiescent again: full equivalence with a sequential rebuild.
        let mut rng = StdRng::seed_from_u64(3);
        let mut plain = Tangle::new(0u64);
        for i in 1..400u64 {
            let p = TxId(rng.gen_range(0..plain.len() as u64));
            plain.attach(i, &[p]).unwrap();
        }
        assert_equivalent(&plain, &t);
    }

    #[test]
    fn stats_match_recomputed_oracle() {
        let (_, sharded) = random_grow(9, 150, 4);
        let stats = sharded.stats();
        // Oracle: recompute everything from scratch via the read APIs.
        let edges: usize = sharded.iter().map(|tx| tx.parents().len()).sum();
        let max_depth = TangleRead::depths_from_tips(&sharded)
            .into_iter()
            .max()
            .unwrap();
        assert_eq!(stats.transactions, sharded.len());
        assert_eq!(stats.tips, sharded.tips().len());
        assert_eq!(stats.edges, edges);
        assert_eq!(stats.max_depth, max_depth);
    }

    #[test]
    fn round_trips_through_tangle_preserve_everything() {
        let (plain, sharded) = random_grow(2, 120, 5);
        let materialised = sharded.to_tangle();
        assert_equivalent(&materialised, &sharded);
        let rebuilt = ShardedTangle::from_tangle(plain);
        assert_equivalent(&materialised, &rebuilt);
    }

    #[test]
    fn snapshot_matches_plain_tangle_snapshot() {
        let (plain, sharded) = random_grow(5, 80, 2);
        assert_eq!(plain.snapshot(), sharded.snapshot());
        let rebuilt = Tangle::from_snapshot(sharded.snapshot()).unwrap();
        assert_equivalent(&rebuilt, &sharded);
    }

    #[test]
    fn walks_run_against_the_sharded_store() {
        use crate::{RandomWalker, UniformBias};
        let (plain, sharded) = random_grow(7, 60, 3);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let walker = RandomWalker::new();
        for _ in 0..20 {
            let a = walker
                .walk(&plain, plain.genesis(), &mut UniformBias, &mut rng_a)
                .unwrap();
            let b = walker
                .walk(&sharded, sharded.genesis(), &mut UniformBias, &mut rng_b)
                .unwrap();
            assert_eq!(a, b);
        }
    }
}
