//! Transactions and their identifiers: the nodes of the DAG, generic
//! over the payload they carry.

use std::fmt;

/// Identifier of a transaction within one [`Tangle`](crate::Tangle).
///
/// Ids are assigned sequentially at attach time; since parents must already
/// exist when a transaction is attached, `a.0 < b.0` whenever `b` (directly
/// or indirectly) approves `a`. The id therefore doubles as a topological
/// index, which the weight/depth computations exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub(crate) u64);

impl TxId {
    /// The numeric index of this transaction (its insertion order).
    pub fn index(self) -> u64 {
        self.0
    }

    /// Builds an id from a dense index — the inverse of
    /// [`TxId::index`]. Every [`TangleRead`](crate::TangleRead) backend
    /// assigns ids `0..len()` in insertion order, so external storage
    /// implementations (e.g. per-client replica views) need this to
    /// mint ids under the same contract; accessors reject out-of-range
    /// ids with `UnknownTransaction`.
    pub fn from_index(index: u64) -> Self {
        Self(index)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// A node of the DAG: a payload plus the approvals of earlier transactions.
///
/// In federated-learning use the payload carries model weights; the tangle
/// itself is agnostic.
#[derive(Debug, Clone)]
pub struct Transaction<P> {
    pub(crate) id: TxId,
    pub(crate) parents: Vec<TxId>,
    pub(crate) payload: P,
    pub(crate) issuer: Option<u32>,
    pub(crate) round: u32,
}

impl<P> Transaction<P> {
    /// The transaction's id.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The transactions this one approves (empty only for the genesis).
    pub fn parents(&self) -> &[TxId] {
        &self.parents
    }

    /// The attached payload.
    pub fn payload(&self) -> &P {
        &self.payload
    }

    /// The publishing client, if recorded.
    pub fn issuer(&self) -> Option<u32> {
        self.issuer
    }

    /// The simulation round in which the transaction was published.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether this is the genesis transaction.
    pub fn is_genesis(&self) -> bool {
        self.parents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_display_and_index() {
        let id = TxId(42);
        assert_eq!(id.to_string(), "tx42");
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn txid_orders_by_insertion() {
        assert!(TxId(1) < TxId(2));
    }

    #[test]
    fn transaction_accessors() {
        let tx = Transaction {
            id: TxId(3),
            parents: vec![TxId(0), TxId(1)],
            payload: "weights",
            issuer: Some(7),
            round: 12,
        };
        assert_eq!(tx.id(), TxId(3));
        assert_eq!(tx.parents(), &[TxId(0), TxId(1)]);
        assert_eq!(*tx.payload(), "weights");
        assert_eq!(tx.issuer(), Some(7));
        assert_eq!(tx.round(), 12);
        assert!(!tx.is_genesis());
    }

    #[test]
    fn genesis_has_no_parents() {
        let tx: Transaction<()> = Transaction {
            id: TxId(0),
            parents: vec![],
            payload: (),
            issuer: None,
            round: 0,
        };
        assert!(tx.is_genesis());
    }
}
