//! DAG introspection: summary statistics and Graphviz export.

use crate::{Tangle, Transaction, TxId};

/// Structural summary of a tangle.
#[derive(Debug, Clone, PartialEq)]
pub struct TangleStats {
    /// Total transactions including the genesis.
    pub transactions: usize,
    /// Current tips (transactions without approvers).
    pub tips: usize,
    /// Total approval edges.
    pub edges: usize,
    /// Longest approval path from the genesis to any tip.
    pub max_depth: u32,
    /// Mean number of parents per non-genesis transaction.
    pub mean_parents: f64,
    /// Mean number of children (approvers) over non-tip transactions.
    pub mean_children: f64,
}

impl<P> Tangle<P> {
    /// Structural summary statistics, read from counters maintained
    /// incrementally on attach — `O(1)` instead of a full re-scan.
    /// (`max_depth` uses the identity "longest path from the genesis ==
    /// maximum depth-from-tips"; the regression tests pin every field
    /// against a recomputed oracle.)
    pub fn stats(&self) -> TangleStats {
        let transactions = self.len();
        let tips = self.tip_count();
        let edges = self.edge_count();
        let max_depth = self.max_height();
        // Only the genesis has no parents, so every other transaction is
        // non-genesis.
        let non_genesis = transactions - 1;
        let non_tips = transactions - tips;
        TangleStats {
            transactions,
            tips,
            edges,
            max_depth,
            mean_parents: if non_genesis == 0 {
                0.0
            } else {
                edges as f64 / non_genesis as f64
            },
            mean_children: if non_tips == 0 {
                0.0
            } else {
                edges as f64 / non_tips as f64
            },
        }
    }

    /// Renders the DAG in Graphviz DOT format (edges point from approver
    /// to approved, i.e. backwards in time, as in the paper's figures).
    ///
    /// `style` receives every transaction and may return extra node
    /// attributes (e.g. `fillcolor=...` to colour by cluster); return an
    /// empty string for defaults. Tips are always drawn grey, matching
    /// Figure 2.
    ///
    /// # Example
    ///
    /// ```
    /// use dagfl_tangle::Tangle;
    ///
    /// # fn main() -> Result<(), dagfl_tangle::TangleError> {
    /// let mut t = Tangle::new(());
    /// let g = t.genesis();
    /// t.attach((), &[g])?;
    /// let dot = t.to_dot(|_| String::new());
    /// assert!(dot.starts_with("digraph tangle"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot<F: Fn(&Transaction<P>) -> String>(&self, style: F) -> String {
        let mut out = String::from("digraph tangle {\n  rankdir=RL;\n  node [shape=circle];\n");
        for tx in self.iter() {
            let id = tx.id();
            let mut attrs = String::new();
            if self.is_tip(id) {
                attrs.push_str("style=filled fillcolor=lightgray ");
            }
            let extra = style(tx);
            if !extra.is_empty() {
                attrs.push_str(&extra);
            }
            let label = match tx.issuer() {
                Some(issuer) => format!("label=\"{}\\nc{}\"", id, issuer),
                None => format!("label=\"{id}\""),
            };
            out.push_str(&format!("  \"{id}\" [{label} {attrs}];\n"));
        }
        for (child, parent) in self.edges() {
            out.push_str(&format!("  \"{child}\" -> \"{parent}\";\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Transactions published in the given round (by recorded metadata).
    pub fn transactions_in_round(&self, round: u32) -> Vec<TxId> {
        self.iter()
            .filter(|tx| !tx.is_genesis() && tx.round() == round)
            .map(Transaction::id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Tangle<()> {
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach((), &[g]).unwrap();
        let b = t.attach((), &[g]).unwrap();
        t.attach((), &[a, b]).unwrap();
        t
    }

    #[test]
    fn stats_of_diamond() {
        let s = diamond().stats();
        assert_eq!(s.transactions, 4);
        assert_eq!(s.tips, 1);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_depth, 2);
        assert!((s.mean_parents - 4.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_children - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_singleton() {
        let t = Tangle::new(());
        let s = t.stats();
        assert_eq!(s.transactions, 1);
        assert_eq!(s.tips, 1);
        assert_eq!(s.edges, 0);
        assert_eq!(s.mean_parents, 0.0);
    }

    /// Regression: a genesis-only tangle has `non_genesis == 0` and
    /// `non_tips == 0`; both means must be exactly 0.0 (finite), never
    /// NaN from a 0/0 division.
    #[test]
    fn stats_of_genesis_only_tangle_are_finite() {
        let s = Tangle::new(()).stats();
        assert_eq!(s.mean_parents, 0.0);
        assert_eq!(s.mean_children, 0.0);
        assert!(s.mean_parents.is_finite() && s.mean_children.is_finite());
        assert_eq!(s.max_depth, 0);
    }

    /// Regression companion: once a single child exists, both denominators
    /// become non-zero and the means are exact.
    #[test]
    fn stats_of_single_edge_tangle() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        t.attach((), &[g]).unwrap();
        let s = t.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.tips, 1);
        assert_eq!(s.mean_parents, 1.0);
        assert_eq!(s.mean_children, 1.0);
    }

    /// Full re-scan oracle for the incremental counters behind `stats()`.
    fn recomputed_stats<P>(t: &Tangle<P>) -> TangleStats {
        let transactions = t.len();
        let tips = t.tips().len();
        let mut edges = 0usize;
        let mut non_genesis = 0usize;
        for tx in t.iter() {
            edges += tx.parents().len();
            if !tx.is_genesis() {
                non_genesis += 1;
            }
        }
        let max_depth = t.depths_from_tips().iter().copied().max().unwrap_or(0);
        let non_tips = transactions - tips;
        TangleStats {
            transactions,
            tips,
            edges,
            max_depth,
            mean_parents: if non_genesis == 0 {
                0.0
            } else {
                edges as f64 / non_genesis as f64
            },
            mean_children: if non_tips == 0 {
                0.0
            } else {
                edges as f64 / non_tips as f64
            },
        }
    }

    /// Regression: the incremental counters must agree with a full
    /// re-scan at every prefix of a randomly grown tangle.
    #[test]
    fn incremental_stats_match_recomputed_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tangle::new(0u64);
            assert_eq!(t.stats(), recomputed_stats(&t));
            for i in 1..120u64 {
                let len = t.len() as u64;
                let a = TxId(rng.gen_range(0..len));
                let b = TxId(rng.gen_range(0..len));
                t.attach(i, &[a, b]).unwrap();
                assert_eq!(t.stats(), recomputed_stats(&t), "prefix {i}, seed {seed}");
            }
        }
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let t = diamond();
        let dot = t.to_dot(|_| String::new());
        assert!(dot.contains("digraph tangle"));
        for tx in t.iter() {
            assert!(dot.contains(&format!("\"{}\"", tx.id())));
        }
        assert_eq!(dot.matches("->").count(), 4);
    }

    #[test]
    fn dot_marks_tips_grey_and_applies_style() {
        let t = diamond();
        let dot = t.to_dot(|tx| {
            if tx.is_genesis() {
                "shape=box ".into()
            } else {
                String::new()
            }
        });
        assert!(dot.contains("fillcolor=lightgray"));
        assert!(dot.contains("shape=box"));
    }

    #[test]
    fn dot_includes_issuer_labels() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        t.attach_with_meta((), &[g], Some(7), 3).unwrap();
        let dot = t.to_dot(|_| String::new());
        assert!(dot.contains("c7"));
    }

    #[test]
    fn transactions_in_round_filters_by_metadata() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach_with_meta((), &[g], Some(0), 1).unwrap();
        let _b = t.attach_with_meta((), &[g], Some(1), 2).unwrap();
        assert_eq!(t.transactions_in_round(1), vec![a]);
        assert!(t.transactions_in_round(9).is_empty());
    }
}
