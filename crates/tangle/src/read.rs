//! A read-only view trait abstracting over tangle storage backends.
//!
//! Tip selection, weight computations and specialization metrics only
//! ever *read* the DAG. [`TangleRead`] captures exactly that surface so
//! the same walk/metric code runs unchanged against the single-owner
//! [`Tangle`], the concurrent [`ShardedTangle`](crate::ShardedTangle),
//! and the per-client replica views in `dagfl-core`.
//!
//! The provided weight/depth/sampling methods mirror the inherent
//! `Tangle` algorithms line for line — same iteration order, same
//! number of RNG draws — so results are bit-identical across backends.

use rand::Rng;

use crate::{Tangle, TangleError, TxId};

/// Read-only access to a tangle's DAG structure.
///
/// Implementations must present transactions under the same contract as
/// [`Tangle`]: ids are dense indices `0..len()` assigned in insertion
/// order, parents always precede children, and id `0` is the genesis.
pub trait TangleRead<P> {
    /// Number of transactions, including the genesis.
    fn len(&self) -> usize;

    /// Always `false`: a tangle contains at least the genesis.
    fn is_empty(&self) -> bool {
        false
    }

    /// The id of the genesis transaction.
    fn genesis(&self) -> TxId {
        TxId(0)
    }

    /// Whether `id` is a transaction of this tangle.
    fn contains(&self, id: TxId) -> bool {
        (id.index() as usize) < self.len()
    }

    /// The payload attached to `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn payload_of(&self, id: TxId) -> Result<&P, TangleError>;

    /// The publishing client recorded for `id`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn issuer_of(&self, id: TxId) -> Result<Option<u32>, TangleError>;

    /// The round (or logical time) recorded for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn round_of(&self, id: TxId) -> Result<u32, TangleError>;

    /// Replaces the contents of `out` with the parents of `id`, in
    /// approval order.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn parents_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError>;

    /// Replaces the contents of `out` with the direct approvers
    /// (children) of `id`, in attachment order.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn children_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError>;

    /// Whether `id` currently has no approvers.
    fn is_tip(&self, id: TxId) -> bool;

    /// All current tips, sorted by id for determinism.
    fn tips(&self) -> Vec<TxId>;

    /// The parents of `id` as a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn parents_of(&self, id: TxId) -> Result<Vec<TxId>, TangleError> {
        let mut out = Vec::new();
        self.parents_into(id, &mut out)?;
        Ok(out)
    }

    /// The children of `id` as a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    fn children_of(&self, id: TxId) -> Result<Vec<TxId>, TangleError> {
        let mut out = Vec::new();
        self.children_into(id, &mut out)?;
        Ok(out)
    }

    /// Exact cumulative weight of every transaction (see
    /// [`Tangle::cumulative_weights`]); identical algorithm, expressed
    /// through this trait's accessors.
    fn cumulative_weights(&self) -> Vec<u64> {
        let n = self.len();
        let words = n.div_ceil(64);
        // bitsets[i] holds the strict descendants of transaction i.
        let mut bitsets: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        let mut weights = vec![0u64; n];
        let mut children = Vec::new();
        for i in (0..n).rev() {
            let id = TxId(i as u64);
            self.children_into(id, &mut children)
                .expect("index in range");
            // Split borrow: take the bitset out, merge children in, put back.
            let mut own = std::mem::take(&mut bitsets[i]);
            for &c in &children {
                let ci = c.index() as usize;
                if ci >= n {
                    continue; // child attached after this view's length
                }
                own[ci / 64] |= 1u64 << (ci % 64);
                for (w, &cw) in own.iter_mut().zip(&bitsets[ci]) {
                    *w |= cw;
                }
            }
            weights[i] = own.iter().map(|w| w.count_ones() as u64).sum::<u64>() + 1;
            bitsets[i] = own;
        }
        weights
    }

    /// Depth of every transaction measured from the tips (see
    /// [`Tangle::depths_from_tips`]); identical algorithm, expressed
    /// through this trait's accessors.
    fn depths_from_tips(&self) -> Vec<u32> {
        let n = self.len();
        let mut depths = vec![0u32; n];
        let mut children = Vec::new();
        for i in (0..n).rev() {
            let id = TxId(i as u64);
            self.children_into(id, &mut children)
                .expect("index in range");
            depths[i] = children
                .iter()
                .filter(|c| (c.index() as usize) < n)
                .map(|c| depths[c.index() as usize] + 1)
                .max()
                .unwrap_or(0);
        }
        depths
    }

    /// Samples a random-walk start transaction whose depth from the
    /// tips lies in `[min_depth, max_depth]` (see
    /// [`Tangle::sample_walk_start`]); identical algorithm and RNG draw
    /// sequence.
    fn sample_walk_start<R: Rng>(&self, min_depth: u32, max_depth: u32, rng: &mut R) -> TxId {
        debug_assert!(min_depth <= max_depth);
        let depths = self.depths_from_tips();
        let candidates: Vec<TxId> = depths
            .iter()
            .enumerate()
            .filter(|(_, &d)| d >= min_depth && d <= max_depth)
            .map(|(i, _)| TxId(i as u64))
            .collect();
        if candidates.is_empty() {
            // Deepest transaction: ties resolve to the earliest (genesis).
            let (idx, _) = depths
                .iter()
                .enumerate()
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                .expect("tangle is never empty");
            return TxId(idx as u64);
        }
        candidates[rng.gen_range(0..candidates.len())]
    }
}

impl<P> TangleRead<P> for Tangle<P> {
    fn len(&self) -> usize {
        Tangle::len(self)
    }

    fn payload_of(&self, id: TxId) -> Result<&P, TangleError> {
        Ok(self.get(id)?.payload())
    }

    fn issuer_of(&self, id: TxId) -> Result<Option<u32>, TangleError> {
        Ok(self.get(id)?.issuer())
    }

    fn round_of(&self, id: TxId) -> Result<u32, TangleError> {
        Ok(self.get(id)?.round())
    }

    fn parents_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
        let parents = self.get(id)?.parents();
        out.clear();
        out.extend_from_slice(parents);
        Ok(())
    }

    fn children_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
        let children = Tangle::children(self, id)?;
        out.clear();
        out.extend_from_slice(children);
        Ok(())
    }

    fn is_tip(&self, id: TxId) -> bool {
        Tangle::is_tip(self, id)
    }

    fn tips(&self) -> Vec<TxId> {
        Tangle::tips(self)
    }

    // Delegate the heavy computations to the inherent implementations so
    // the trait path is *the same code*, not merely the same algorithm.
    fn cumulative_weights(&self) -> Vec<u64> {
        Tangle::cumulative_weights(self)
    }

    fn depths_from_tips(&self) -> Vec<u32> {
        Tangle::depths_from_tips(self)
    }

    fn sample_walk_start<R: Rng>(&self, min_depth: u32, max_depth: u32, rng: &mut R) -> TxId {
        Tangle::sample_walk_start(self, min_depth, max_depth, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> Tangle<u32> {
        let mut t = Tangle::new(0);
        let g = t.genesis();
        let a = t.attach(1, &[g]).unwrap();
        let b = t.attach(2, &[g]).unwrap();
        t.attach_with_meta(3, &[a, b], Some(7), 2).unwrap();
        t
    }

    /// Runs the provided (default) trait bodies against a `Tangle` by
    /// routing through a newtype that only forwards the required methods.
    struct Forward<'a>(&'a Tangle<u32>);

    impl TangleRead<u32> for Forward<'_> {
        fn len(&self) -> usize {
            Tangle::len(self.0)
        }
        fn payload_of(&self, id: TxId) -> Result<&u32, TangleError> {
            Ok(self.0.get(id)?.payload())
        }
        fn issuer_of(&self, id: TxId) -> Result<Option<u32>, TangleError> {
            Ok(self.0.get(id)?.issuer())
        }
        fn round_of(&self, id: TxId) -> Result<u32, TangleError> {
            Ok(self.0.get(id)?.round())
        }
        fn parents_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
            out.clear();
            out.extend_from_slice(self.0.get(id)?.parents());
            Ok(())
        }
        fn children_into(&self, id: TxId, out: &mut Vec<TxId>) -> Result<(), TangleError> {
            out.clear();
            out.extend_from_slice(self.0.children(id)?);
            Ok(())
        }
        fn is_tip(&self, id: TxId) -> bool {
            Tangle::is_tip(self.0, id)
        }
        fn tips(&self) -> Vec<TxId> {
            Tangle::tips(self.0)
        }
    }

    #[test]
    fn trait_accessors_match_inherent() {
        let t = fixture();
        let v: &dyn Fn(&Tangle<u32>) -> usize = &|t| TangleRead::len(t);
        assert_eq!(v(&t), 4);
        assert_eq!(TangleRead::payload_of(&t, TxId(3)).unwrap(), &3);
        assert_eq!(TangleRead::issuer_of(&t, TxId(3)).unwrap(), Some(7));
        assert_eq!(TangleRead::round_of(&t, TxId(3)).unwrap(), 2);
        assert_eq!(
            TangleRead::parents_of(&t, TxId(3)).unwrap(),
            vec![TxId(1), TxId(2)]
        );
        assert_eq!(
            TangleRead::children_of(&t, TxId(0)).unwrap(),
            vec![TxId(1), TxId(2)]
        );
        assert!(TangleRead::is_tip(&t, TxId(3)));
        assert_eq!(TangleRead::tips(&t), vec![TxId(3)]);
        assert!(TangleRead::contains(&t, TxId(3)));
        assert!(!TangleRead::contains(&t, TxId(4)));
        assert!(!TangleRead::is_empty(&t));
    }

    #[test]
    fn provided_weight_bodies_match_inherent_algorithms() {
        let t = fixture();
        let f = Forward(&t);
        assert_eq!(f.cumulative_weights(), t.cumulative_weights());
        assert_eq!(f.depths_from_tips(), t.depths_from_tips());
    }

    #[test]
    fn provided_sampler_draws_identically_to_inherent() {
        // Longer chain so the walk-start band filter is non-trivial.
        let mut t = Tangle::new(0u32);
        let mut prev = t.genesis();
        for i in 1..40 {
            prev = t.attach(i, &[prev]).unwrap();
        }
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let f = Forward(&t);
        for _ in 0..10 {
            let inherent = t.sample_walk_start(15, 25, &mut rng_a);
            let via_trait = f.sample_walk_start(15, 25, &mut rng_b);
            assert_eq!(inherent, via_trait);
        }
    }

    #[test]
    fn unknown_ids_error_through_the_trait() {
        let t = fixture();
        assert!(TangleRead::payload_of(&t, TxId(9)).is_err());
        assert!(TangleRead::parents_of(&t, TxId(9)).is_err());
        assert!(TangleRead::children_of(&t, TxId(9)).is_err());
        assert!(!TangleRead::is_tip(&t, TxId(9)));
    }
}
