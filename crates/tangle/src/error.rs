//! Errors of the ledger operations (unknown ids, missing parents,
//! invalid walk starts).

use std::error::Error;
use std::fmt;

use crate::TxId;

/// Errors produced by tangle operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TangleError {
    /// A referenced parent transaction does not exist in this tangle.
    UnknownParent(TxId),
    /// A referenced transaction does not exist in this tangle.
    UnknownTransaction(TxId),
    /// A non-genesis transaction was attached without parents.
    MissingParents,
    /// A random walk was asked to start from a transaction not in the
    /// tangle.
    InvalidWalkStart(TxId),
    /// A snapshot or delta is malformed (empty, parented genesis, or a
    /// record referencing a transaction it cannot know yet).
    InvalidSnapshot(&'static str),
}

impl fmt::Display for TangleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangleError::UnknownParent(id) => write!(f, "unknown parent transaction {id}"),
            TangleError::UnknownTransaction(id) => write!(f, "unknown transaction {id}"),
            TangleError::MissingParents => {
                write!(f, "transaction must approve at least one parent")
            }
            TangleError::InvalidWalkStart(id) => {
                write!(f, "random walk start {id} is not in the tangle")
            }
            TangleError::InvalidSnapshot(why) => write!(f, "invalid snapshot: {why}"),
        }
    }
}

impl Error for TangleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_id() {
        let e = TangleError::UnknownParent(TxId(9));
        assert!(e.to_string().contains("tx9"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TangleError>();
    }
}
