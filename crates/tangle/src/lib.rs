//! A DAG ledger ("tangle") substrate for decentralized federated learning.
//!
//! The paper communicates model updates through a directed acyclic graph in
//! the style of IOTA's tangle (Popov): every transaction approves (points
//! to) one or more earlier transactions, *tips* are transactions without
//! approvers yet, and new transactions choose which tips to approve via a
//! random walk.
//!
//! This crate provides the ledger mechanics, generic over the transaction
//! payload:
//!
//! * [`Tangle`] — append-only transaction store with approval edges, tip
//!   tracking and past/future-cone queries,
//! * [`ShardedTangle`] — a concurrent store with the same contract whose
//!   read path never takes a global lock: transactions live in immutable
//!   once-written segments, the children/tip index is split across
//!   independently-locked shards, and appends go through `&self`,
//! * [`TangleRead`] — the read-only view trait both stores implement, so
//!   walks and metrics are generic over the storage backend,
//! * [`SharedTangle`] — a cheap-to-clone, thread-safe handle used by the
//!   concurrent round simulation,
//! * [`TangleSnapshot`] — order-preserving export/import of a tangle's
//!   state with deltas ([`TangleSnapshot::delta_since`]) so late-joining
//!   replicas can catch up,
//! * cumulative weights and depth-from-tips ([`Tangle::cumulative_weights`],
//!   [`Tangle::depths_from_tips`]) as used by classic tangle tip selection
//!   and by Popov's walk-start sampling,
//! * a pluggable random-walk engine ([`RandomWalker`], [`WalkBias`]) with
//!   [`UniformBias`] (the paper's "random tip selector" baseline) and
//!   [`CumulativeWeightBias`] (classic IOTA MCMC). The paper's
//!   accuracy-aware bias lives in `dagfl-core`, where models can be
//!   evaluated.
//!
//! # Example
//!
//! ```
//! use dagfl_tangle::{RandomWalker, Tangle, UniformBias};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), dagfl_tangle::TangleError> {
//! let mut tangle = Tangle::new("genesis");
//! let genesis = tangle.genesis();
//! let a = tangle.attach("a", &[genesis])?;
//! let _b = tangle.attach("b", &[genesis, a])?;
//! let mut rng = StdRng::seed_from_u64(0);
//! let walker = RandomWalker::new();
//! let result = walker.walk(&tangle, genesis, &mut UniformBias, &mut rng)?;
//! assert!(tangle.is_tip(result.tip));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod export;
mod read;
mod sharded;
mod shared;
mod snapshot;
mod tangle;
mod transaction;
mod walk;
mod weights;

pub use error::TangleError;
pub use export::TangleStats;
pub use read::TangleRead;
pub use sharded::ShardedTangle;
pub use shared::SharedTangle;
pub use snapshot::{SnapshotRecord, TangleSnapshot};
pub use tangle::Tangle;
pub use transaction::{Transaction, TxId};
pub use walk::{
    weighted_choice, CumulativeWeightBias, RandomWalker, UniformBias, WalkBias, WalkResult,
};
