//! The append-only DAG store: attach, lookup, tip tracking and cone
//! queries.

use std::collections::HashSet;

use crate::{TangleError, Transaction, TxId};

/// An append-only DAG of transactions with approval edges.
///
/// The tangle starts from a single genesis transaction. Every further
/// transaction approves one or more existing transactions; approvals can
/// never be removed, so the graph is acyclic by construction (a transaction
/// can only approve transactions that were attached before it).
///
/// # Example
///
/// ```
/// use dagfl_tangle::Tangle;
///
/// # fn main() -> Result<(), dagfl_tangle::TangleError> {
/// let mut tangle = Tangle::new(0u32);
/// let genesis = tangle.genesis();
/// let a = tangle.attach(1, &[genesis])?;
/// let b = tangle.attach(2, &[genesis])?;
/// let c = tangle.attach(3, &[a, b])?;
/// assert_eq!(tangle.tips(), vec![c]);
/// assert_eq!(tangle.children(genesis)?, &[a, b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tangle<P> {
    transactions: Vec<Transaction<P>>,
    children: Vec<Vec<TxId>>,
    tips: HashSet<TxId>,
    // Incremental structural counters maintained on attach so `stats()`
    // needs no full-graph re-scan (the test suite pins them against a
    // recomputed oracle).
    heights: Vec<u32>,
    edges: usize,
    max_height: u32,
}

impl<P> Tangle<P> {
    /// Creates a tangle containing only the genesis transaction with the
    /// given payload.
    pub fn new(genesis_payload: P) -> Self {
        let genesis = Transaction {
            id: TxId(0),
            parents: Vec::new(),
            payload: genesis_payload,
            issuer: None,
            round: 0,
        };
        let mut tips = HashSet::new();
        tips.insert(TxId(0));
        Self {
            transactions: vec![genesis],
            children: vec![Vec::new()],
            tips,
            heights: vec![0],
            edges: 0,
            max_height: 0,
        }
    }

    /// The id of the genesis transaction.
    pub fn genesis(&self) -> TxId {
        TxId(0)
    }

    /// Number of transactions, including the genesis.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Always `false`: a tangle contains at least the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Attaches a new transaction approving `parents`.
    ///
    /// Duplicate parent ids are collapsed, so passing `[g, g]` (both walks
    /// ended at the same tip) records a single approval.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::MissingParents`] for an empty parent list and
    /// [`TangleError::UnknownParent`] if a parent does not exist.
    pub fn attach(&mut self, payload: P, parents: &[TxId]) -> Result<TxId, TangleError> {
        self.attach_with_meta(payload, parents, None, 0)
    }

    /// Attaches a new transaction recording the publishing client and round.
    ///
    /// # Errors
    ///
    /// Same as [`Tangle::attach`].
    pub fn attach_with_meta(
        &mut self,
        payload: P,
        parents: &[TxId],
        issuer: Option<u32>,
        round: u32,
    ) -> Result<TxId, TangleError> {
        if parents.is_empty() {
            return Err(TangleError::MissingParents);
        }
        let mut unique: Vec<TxId> = Vec::with_capacity(parents.len());
        for &p in parents {
            if p.0 as usize >= self.transactions.len() {
                return Err(TangleError::UnknownParent(p));
            }
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let id = TxId(self.transactions.len() as u64);
        let height = 1 + unique
            .iter()
            .map(|p| self.heights[p.0 as usize])
            .max()
            .expect("parents are non-empty");
        for &p in &unique {
            self.children[p.0 as usize].push(id);
            self.tips.remove(&p);
        }
        self.edges += unique.len();
        self.transactions.push(Transaction {
            id,
            parents: unique,
            payload,
            issuer,
            round,
        });
        self.children.push(Vec::new());
        self.tips.insert(id);
        self.heights.push(height);
        self.max_height = self.max_height.max(height);
        Ok(id)
    }

    /// Total approval edges, maintained incrementally.
    pub(crate) fn edge_count(&self) -> usize {
        self.edges
    }

    /// Longest approval path from the genesis to any transaction —
    /// equal to the maximum depth-from-tips — maintained incrementally.
    pub(crate) fn max_height(&self) -> u32 {
        self.max_height
    }

    /// Number of current tips, without sorting.
    pub(crate) fn tip_count(&self) -> usize {
        self.tips.len()
    }

    /// Looks up a transaction by id.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    pub fn get(&self, id: TxId) -> Result<&Transaction<P>, TangleError> {
        self.transactions
            .get(id.0 as usize)
            .ok_or(TangleError::UnknownTransaction(id))
    }

    /// The direct approvers of `id` (transactions that list it as parent).
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    pub fn children(&self, id: TxId) -> Result<&[TxId], TangleError> {
        self.children
            .get(id.0 as usize)
            .map(Vec::as_slice)
            .ok_or(TangleError::UnknownTransaction(id))
    }

    /// Whether `id` currently has no approvers.
    pub fn is_tip(&self, id: TxId) -> bool {
        self.tips.contains(&id)
    }

    /// All current tips, sorted by id for determinism.
    pub fn tips(&self) -> Vec<TxId> {
        let mut tips: Vec<TxId> = self.tips.iter().copied().collect();
        tips.sort();
        tips
    }

    /// Iterator over all transactions in insertion (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction<P>> {
        self.transactions.iter()
    }

    /// The past cone of `id`: the transaction itself plus everything it
    /// directly or indirectly approves.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    pub fn past_cone(&self, id: TxId) -> Result<HashSet<TxId>, TangleError> {
        self.get(id)?;
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(current) = stack.pop() {
            if !seen.insert(current) {
                continue;
            }
            for &p in self.transactions[current.0 as usize].parents() {
                if !seen.contains(&p) {
                    stack.push(p);
                }
            }
        }
        Ok(seen)
    }

    /// The future cone of `id`: the transaction itself plus everything that
    /// directly or indirectly approves it.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::UnknownTransaction`] for ids not in this
    /// tangle.
    pub fn future_cone(&self, id: TxId) -> Result<HashSet<TxId>, TangleError> {
        self.get(id)?;
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(current) = stack.pop() {
            if !seen.insert(current) {
                continue;
            }
            for &c in &self.children[current.0 as usize] {
                if !seen.contains(&c) {
                    stack.push(c);
                }
            }
        }
        Ok(seen)
    }

    /// All approval edges as `(child, parent)` pairs, in insertion order.
    pub fn edges(&self) -> Vec<(TxId, TxId)> {
        let mut edges = Vec::new();
        for tx in &self.transactions {
            for &p in tx.parents() {
                edges.push((tx.id(), p));
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Tangle<u32>, [TxId; 4]) {
        let mut t = Tangle::new(0);
        let g = t.genesis();
        let a = t.attach(1, &[g]).unwrap();
        let b = t.attach(2, &[g]).unwrap();
        let c = t.attach(3, &[a, b]).unwrap();
        (t, [g, a, b, c])
    }

    #[test]
    fn new_tangle_has_single_tip_genesis() {
        let t = Tangle::new(());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.tips(), vec![t.genesis()]);
        assert!(t.get(t.genesis()).unwrap().is_genesis());
    }

    #[test]
    fn attach_updates_tips_and_children() {
        let (t, [g, a, b, c]) = diamond();
        assert_eq!(t.tips(), vec![c]);
        assert!(!t.is_tip(g));
        assert!(!t.is_tip(a));
        assert!(t.is_tip(c));
        assert_eq!(t.children(g).unwrap(), &[a, b]);
        assert_eq!(t.children(c).unwrap(), &[] as &[TxId]);
    }

    #[test]
    fn attach_rejects_unknown_parent() {
        let mut t = Tangle::new(());
        let err = t.attach((), &[TxId(5)]).unwrap_err();
        assert_eq!(err, TangleError::UnknownParent(TxId(5)));
    }

    #[test]
    fn attach_rejects_empty_parents() {
        let mut t = Tangle::new(());
        assert_eq!(t.attach((), &[]).unwrap_err(), TangleError::MissingParents);
    }

    #[test]
    fn attach_deduplicates_parents() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach((), &[g, g]).unwrap();
        assert_eq!(t.get(a).unwrap().parents(), &[g]);
        assert_eq!(t.children(g).unwrap(), &[a]);
    }

    #[test]
    fn meta_is_recorded() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach_with_meta((), &[g], Some(3), 17).unwrap();
        let tx = t.get(a).unwrap();
        assert_eq!(tx.issuer(), Some(3));
        assert_eq!(tx.round(), 17);
    }

    #[test]
    fn past_cone_of_diamond_top_is_everything() {
        let (t, [g, a, b, c]) = diamond();
        let cone = t.past_cone(c).unwrap();
        assert_eq!(cone.len(), 4);
        for id in [g, a, b, c] {
            assert!(cone.contains(&id));
        }
    }

    #[test]
    fn past_cone_of_middle_excludes_sibling() {
        let (t, [g, a, b, _]) = diamond();
        let cone = t.past_cone(a).unwrap();
        assert!(cone.contains(&g));
        assert!(cone.contains(&a));
        assert!(!cone.contains(&b));
    }

    #[test]
    fn future_cone_of_genesis_is_everything() {
        let (t, ids) = diamond();
        let cone = t.future_cone(ids[0]).unwrap();
        assert_eq!(cone.len(), 4);
    }

    #[test]
    fn future_cone_of_tip_is_self() {
        let (t, [_, _, _, c]) = diamond();
        let cone = t.future_cone(c).unwrap();
        assert_eq!(cone.len(), 1);
        assert!(cone.contains(&c));
    }

    #[test]
    fn cones_of_unknown_id_error() {
        let t = Tangle::new(());
        assert!(t.past_cone(TxId(3)).is_err());
        assert!(t.future_cone(TxId(3)).is_err());
        assert!(t.get(TxId(3)).is_err());
        assert!(t.children(TxId(3)).is_err());
    }

    #[test]
    fn edges_list_all_approvals() {
        let (t, [g, a, b, c]) = diamond();
        let edges = t.edges();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(a, g)));
        assert!(edges.contains(&(b, g)));
        assert!(edges.contains(&(c, a)));
        assert!(edges.contains(&(c, b)));
    }

    #[test]
    fn iter_is_topological() {
        let (t, _) = diamond();
        let mut last = None;
        for tx in t.iter() {
            for p in tx.parents() {
                assert!(p.index() < tx.id().index());
            }
            if let Some(prev) = last {
                assert!(tx.id().index() > prev);
            }
            last = Some(tx.id().index());
        }
    }

    #[test]
    fn two_parallel_branches_have_two_tips() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach((), &[g]).unwrap();
        let b = t.attach((), &[g]).unwrap();
        assert_eq!(t.tips(), vec![a, b]);
    }
}
