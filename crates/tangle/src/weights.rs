//! Cumulative weights and depth-from-tips for tip selection.

use rand::Rng;

use crate::{Tangle, TxId};

impl<P> Tangle<P> {
    /// Exact cumulative weight of every transaction: the number of
    /// transactions that directly or indirectly approve it, counting the
    /// transaction itself as self-approving (Popov; Figure 3 of the paper).
    ///
    /// Computed with per-transaction descendant bitsets in reverse
    /// topological order, so diamonds are not double-counted. Memory is
    /// `O(n² / 64)` — appropriate for simulation-scale tangles (a 10 000
    /// transaction tangle needs ~12 MiB transiently).
    pub fn cumulative_weights(&self) -> Vec<u64> {
        let n = self.len();
        let words = n.div_ceil(64);
        // bitsets[i] holds the strict descendants of transaction i.
        let mut bitsets: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        let mut weights = vec![0u64; n];
        for i in (0..n).rev() {
            let id = TxId(i as u64);
            // Safe: every index below len exists.
            let children: Vec<TxId> = self.children(id).expect("index in range").to_vec();
            // Split borrow: take the bitset out, merge children in, put back.
            let mut own = std::mem::take(&mut bitsets[i]);
            for c in children {
                let ci = c.index() as usize;
                own[ci / 64] |= 1u64 << (ci % 64);
                for (w, &cw) in own.iter_mut().zip(&bitsets[ci]) {
                    *w |= cw;
                }
            }
            weights[i] = own.iter().map(|w| w.count_ones() as u64).sum::<u64>() + 1;
            bitsets[i] = own;
        }
        weights
    }

    /// Depth of every transaction measured from the tips: tips have depth
    /// 0, every other transaction has `1 + max(depth of its approvers)`
    /// (the longest approval path to any tip).
    pub fn depths_from_tips(&self) -> Vec<u32> {
        let n = self.len();
        let mut depths = vec![0u32; n];
        for i in (0..n).rev() {
            let id = TxId(i as u64);
            let children = self.children(id).expect("index in range");
            depths[i] = children
                .iter()
                .map(|c| depths[c.index() as usize] + 1)
                .max()
                .unwrap_or(0);
        }
        depths
    }

    /// Samples a random-walk start transaction whose depth from the tips
    /// lies in `[min_depth, max_depth]`, as proposed by Popov (the paper
    /// uses 15–25).
    ///
    /// Falls back to the deepest transaction (usually the genesis) while
    /// the tangle is still too shallow to contain the requested band.
    pub fn sample_walk_start<R: Rng>(&self, min_depth: u32, max_depth: u32, rng: &mut R) -> TxId {
        debug_assert!(min_depth <= max_depth);
        let depths = self.depths_from_tips();
        let candidates: Vec<TxId> = depths
            .iter()
            .enumerate()
            .filter(|(_, &d)| d >= min_depth && d <= max_depth)
            .map(|(i, _)| TxId(i as u64))
            .collect();
        if candidates.is_empty() {
            // Deepest transaction: ties resolve to the earliest (genesis).
            let (idx, _) = depths
                .iter()
                .enumerate()
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                .expect("tangle is never empty");
            return TxId(idx as u64);
        }
        candidates[rng.gen_range(0..candidates.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// genesis -> a -> b -> c (a chain).
    fn chain(n: usize) -> Tangle<usize> {
        let mut t = Tangle::new(0);
        let mut prev = t.genesis();
        for i in 1..n {
            prev = t.attach(i, &[prev]).unwrap();
        }
        t
    }

    #[test]
    fn chain_cumulative_weights_decrease() {
        let t = chain(5);
        let w = t.cumulative_weights();
        assert_eq!(w, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn diamond_not_double_counted() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach((), &[g]).unwrap();
        let b = t.attach((), &[g]).unwrap();
        let _c = t.attach((), &[a, b]).unwrap();
        let w = t.cumulative_weights();
        // genesis is approved by a, b, c -> weight 4 (not 5).
        assert_eq!(w[0], 4);
        assert_eq!(w[1], 2);
        assert_eq!(w[2], 2);
        assert_eq!(w[3], 1);
    }

    #[test]
    fn paper_figure3_style_weights() {
        // Reproduce the mechanics of Figure 3: weights count the approving
        // subgraph including self.
        let mut t = Tangle::new(());
        let g = t.genesis();
        let a = t.attach((), &[g]).unwrap();
        let b = t.attach((), &[g, a]).unwrap();
        let c = t.attach((), &[a]).unwrap();
        let d = t.attach((), &[b, c]).unwrap();
        let w = t.cumulative_weights();
        assert_eq!(w[g.index() as usize], 5);
        assert_eq!(w[a.index() as usize], 4);
        assert_eq!(w[b.index() as usize], 2);
        assert_eq!(w[c.index() as usize], 2);
        assert_eq!(w[d.index() as usize], 1);
    }

    #[test]
    fn tips_have_weight_one() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        for _ in 0..5 {
            t.attach((), &[g]).unwrap();
        }
        let w = t.cumulative_weights();
        for tip in t.tips() {
            assert_eq!(w[tip.index() as usize], 1);
        }
        assert_eq!(w[0], 6);
    }

    #[test]
    fn chain_depths_count_distance_to_tip() {
        let t = chain(4);
        assert_eq!(t.depths_from_tips(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn depth_uses_longest_path() {
        let mut t = Tangle::new(());
        let g = t.genesis();
        // Short branch: g -> a (tip). Long branch: g -> b -> c (tip).
        let _a = t.attach((), &[g]).unwrap();
        let b = t.attach((), &[g]).unwrap();
        let _c = t.attach((), &[b]).unwrap();
        let depths = t.depths_from_tips();
        assert_eq!(depths[g.index() as usize], 2);
        assert_eq!(depths[b.index() as usize], 1);
    }

    #[test]
    fn sample_walk_start_prefers_band() {
        let t = chain(40);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let start = t.sample_walk_start(15, 25, &mut rng);
            let depth = t.depths_from_tips()[start.index() as usize];
            assert!((15..=25).contains(&depth), "depth {depth} out of band");
        }
    }

    #[test]
    fn sample_walk_start_falls_back_to_deepest() {
        let t = chain(3);
        let mut rng = StdRng::seed_from_u64(0);
        let start = t.sample_walk_start(15, 25, &mut rng);
        assert_eq!(start, t.genesis());
    }

    #[test]
    fn single_node_weights_and_depths() {
        let t = Tangle::new(());
        assert_eq!(t.cumulative_weights(), vec![1]);
        assert_eq!(t.depths_from_tips(), vec![0]);
    }
}
