//! Snapshot export/import of a tangle: a flat, order-preserving record
//! list that can rebuild the DAG elsewhere, plus deltas for catch-up
//! sync.
//!
//! A snapshot is the tangle's transaction list in insertion
//! (topological) order with parents expressed as indices into that
//! list. Because ids are assigned sequentially, replaying the records
//! in order through [`Tangle::attach_with_meta`] reproduces the exact
//! same id assignment — a late-joining replica rebuilt from a snapshot
//! is indistinguishable from one that received every transaction in
//! order.
//!
//! Deltas support incremental sync: a peer that already holds the
//! first `n` transactions only needs [`TangleSnapshot::delta_since`]`(n)`
//! applied via [`Tangle::apply_delta`].

use crate::{Tangle, TangleError, Transaction, TxId};

/// One transaction of a snapshot: parents as topological indices plus
/// the payload and metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord<P> {
    /// Indices (insertion order) of the approved transactions. Empty
    /// only for the genesis record.
    pub parents: Vec<u64>,
    /// The transaction payload.
    pub payload: P,
    /// The publishing client, if recorded.
    pub issuer: Option<u32>,
    /// The round (or logical time) the transaction was published in.
    pub round: u32,
}

/// A serializable copy of a tangle's full state (or a suffix of it).
///
/// # Example
///
/// ```
/// use dagfl_tangle::Tangle;
///
/// # fn main() -> Result<(), dagfl_tangle::TangleError> {
/// let mut tangle = Tangle::new("genesis");
/// let g = tangle.genesis();
/// tangle.attach("a", &[g])?;
/// let rebuilt = Tangle::from_snapshot(tangle.snapshot())?;
/// assert_eq!(rebuilt.len(), tangle.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TangleSnapshot<P> {
    records: Vec<SnapshotRecord<P>>,
}

impl<P> TangleSnapshot<P> {
    /// Builds a snapshot directly from records (the first must be a
    /// genesis record for a full snapshot; deltas start elsewhere).
    pub fn from_records(records: Vec<SnapshotRecord<P>>) -> Self {
        Self { records }
    }

    /// The records in insertion (topological) order.
    pub fn records(&self) -> &[SnapshotRecord<P>] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records after the first `known` transactions — what a peer
    /// that already holds a prefix of length `known` is missing.
    pub fn delta_since(&self, known: usize) -> TangleSnapshot<P>
    where
        P: Clone,
    {
        let start = known.min(self.records.len());
        Self {
            records: self.records[start..].to_vec(),
        }
    }
}

impl<P: Clone> Tangle<P> {
    /// Exports the full tangle as a snapshot.
    pub fn snapshot(&self) -> TangleSnapshot<P> {
        let records = self
            .iter()
            .map(|tx| SnapshotRecord {
                parents: tx.parents().iter().map(|p| p.index()).collect(),
                payload: tx.payload().clone(),
                issuer: tx.issuer(),
                round: tx.round(),
            })
            .collect();
        TangleSnapshot { records }
    }
}

impl<P> Tangle<P> {
    /// Rebuilds a tangle from a full snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::InvalidSnapshot`] if the snapshot is
    /// empty, its first record is not a genesis (has parents), any
    /// later record has no parents, or a parent index points at or
    /// past its own record.
    pub fn from_snapshot(snapshot: TangleSnapshot<P>) -> Result<Self, TangleError> {
        let mut records = snapshot.records.into_iter();
        let genesis = records
            .next()
            .ok_or(TangleError::InvalidSnapshot("snapshot is empty"))?;
        if !genesis.parents.is_empty() {
            return Err(TangleError::InvalidSnapshot(
                "first record must be the genesis (no parents)",
            ));
        }
        let mut tangle = Tangle::new(genesis.payload);
        for record in records {
            tangle.apply_record(record)?;
        }
        Ok(tangle)
    }

    /// Appends the records of a delta produced by
    /// [`TangleSnapshot::delta_since`]`(self.len())` on a tangle this
    /// one is a prefix of. Returns the number of transactions added.
    ///
    /// # Errors
    ///
    /// Returns [`TangleError::InvalidSnapshot`] if a record has no
    /// parents or references a transaction that is still unknown —
    /// i.e. the delta was cut for a different prefix length.
    pub fn apply_delta(&mut self, delta: TangleSnapshot<P>) -> Result<usize, TangleError> {
        let mut added = 0;
        for record in delta.records {
            self.apply_record(record)?;
            added += 1;
        }
        Ok(added)
    }

    fn apply_record(&mut self, record: SnapshotRecord<P>) -> Result<TxId, TangleError> {
        if record.parents.is_empty() {
            return Err(TangleError::InvalidSnapshot(
                "non-genesis record without parents",
            ));
        }
        let len = self.len() as u64;
        let parents: Vec<TxId> = record
            .parents
            .iter()
            .map(|&p| {
                if p < len {
                    Ok(TxId(p))
                } else {
                    Err(TangleError::InvalidSnapshot(
                        "record references a transaction after itself",
                    ))
                }
            })
            .collect::<Result<_, _>>()?;
        self.attach_with_meta(record.payload, &parents, record.issuer, record.round)
    }
}

impl<P: Clone> From<&Tangle<P>> for TangleSnapshot<P> {
    fn from(tangle: &Tangle<P>) -> Self {
        tangle.snapshot()
    }
}

/// Convenience: snapshot a single transaction as a record (parents as
/// indices).
impl<P: Clone> From<&Transaction<P>> for SnapshotRecord<P> {
    fn from(tx: &Transaction<P>) -> Self {
        SnapshotRecord {
            parents: tx.parents().iter().map(|p| p.index()).collect(),
            payload: tx.payload().clone(),
            issuer: tx.issuer(),
            round: tx.round(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tangle<u32> {
        let mut t = Tangle::new(0);
        let g = t.genesis();
        let a = t.attach(1, &[g]).unwrap();
        let b = t.attach_with_meta(2, &[g, a], Some(1), 7).unwrap();
        t.attach(3, &[a, b]).unwrap();
        t
    }

    #[test]
    fn snapshot_round_trips_structure_and_meta() {
        let t = sample();
        let rebuilt = Tangle::from_snapshot(t.snapshot()).unwrap();
        assert_eq!(rebuilt.len(), t.len());
        assert_eq!(rebuilt.edges(), t.edges());
        assert_eq!(rebuilt.tips(), t.tips());
        for (a, b) in t.iter().zip(rebuilt.iter()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.payload(), b.payload());
            assert_eq!(a.issuer(), b.issuer());
            assert_eq!(a.round(), b.round());
        }
    }

    #[test]
    fn delta_since_catches_a_prefix_up() {
        let full = sample();
        // A replica that only has the first two transactions.
        let snap = full.snapshot();
        let mut partial =
            Tangle::from_snapshot(TangleSnapshot::from_records(snap.records()[..2].to_vec()))
                .unwrap();
        assert_eq!(partial.len(), 2);
        let added = partial
            .apply_delta(snap.delta_since(partial.len()))
            .unwrap();
        assert_eq!(added, 2);
        assert_eq!(partial.edges(), full.edges());
    }

    #[test]
    fn delta_since_full_length_is_empty() {
        let t = sample();
        let snap = t.snapshot();
        assert!(snap.delta_since(t.len()).is_empty());
        assert!(snap.delta_since(t.len() + 5).is_empty());
        assert_eq!(snap.delta_since(0).len(), t.len());
    }

    #[test]
    fn empty_snapshot_is_rejected() {
        let err = Tangle::<u32>::from_snapshot(TangleSnapshot::from_records(vec![])).unwrap_err();
        assert!(matches!(err, TangleError::InvalidSnapshot(_)));
    }

    #[test]
    fn snapshot_with_parented_genesis_is_rejected() {
        let records = vec![SnapshotRecord {
            parents: vec![0],
            payload: 1u32,
            issuer: None,
            round: 0,
        }];
        let err = Tangle::from_snapshot(TangleSnapshot::from_records(records)).unwrap_err();
        assert!(matches!(err, TangleError::InvalidSnapshot(_)));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let records = vec![
            SnapshotRecord {
                parents: vec![],
                payload: 0u32,
                issuer: None,
                round: 0,
            },
            SnapshotRecord {
                parents: vec![2],
                payload: 1,
                issuer: None,
                round: 0,
            },
        ];
        let err = Tangle::from_snapshot(TangleSnapshot::from_records(records)).unwrap_err();
        assert!(matches!(err, TangleError::InvalidSnapshot(_)));
    }

    #[test]
    fn record_from_transaction_matches_snapshot() {
        let t = sample();
        let snap = t.snapshot();
        for (tx, rec) in t.iter().zip(snap.records()) {
            assert_eq!(&SnapshotRecord::from(tx), rec);
        }
        assert_eq!(&TangleSnapshot::from(&t), &snap);
    }
}
