//! **dagfl-analysis** — the specialization analytics subsystem:
//! unsupervised clustering over client models and approval graphs.
//!
//! The paper demonstrates *implicit* model specialization by eyeballing
//! approval-graph structure. This crate measures it, without ground
//! truth in the loop and deterministically enough to put the numbers in
//! golden-checked CSVs:
//!
//! * [`kmeans`] / [`auto_k`] — seeded, deterministic k-means over flat
//!   client parameter vectors (k-means++ init from a
//!   [`derive_seed`](dagfl_core::derive_seed) stream, deterministic
//!   empty-cluster reseeding, fixed iteration order).
//! * [`silhouette_score`], [`cluster_purity`], [`adjusted_rand_index`]
//!   — the quality metrics; silhouette is unsupervised and drives
//!   auto-k, purity and ARI score against the dataset's ground-truth
//!   clusters.
//! * [`affinity_matrix`] / [`label_propagation`] — the approval-graph
//!   view: pairwise approval-count affinities and deterministic
//!   label-propagation community detection, scored with
//!   [`modularity`](dagfl_graphs::modularity).
//! * [`analyze`] — the per-round pipeline producing an
//!   [`AnalysisSnapshot`]: both views plus their agreement (ARI between
//!   the parameter-space and graph-space partitions).
//!
//! The scenario layer drives [`analyze`] on a cadence and folds the
//! snapshots into `RunReport`s and sweep CSVs; `dagfl analyze` prints
//! them interactively. Everything here is a pure function of its
//! inputs — the determinism contract the `--jobs`-invariance tests
//! assert end to end.
//!
//! # Example
//!
//! ```
//! use dagfl_analysis::{kmeans, KMeansConfig};
//!
//! let points = vec![
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.0],
//!     vec![5.0, 5.0],
//!     vec![5.1, 5.0],
//! ];
//! let result = kmeans(&points, &KMeansConfig { k: 2, ..KMeansConfig::default() });
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[2]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod community;
mod kmeans;
mod metrics;
mod pipeline;

pub use community::{affinity_matrix, label_propagation, DEFAULT_LABEL_PROPAGATION_SWEEPS};
pub use kmeans::{auto_k, kmeans, KMeansConfig, KMeansResult};
pub use metrics::{adjusted_rand_index, cluster_purity, silhouette_score};
pub use pipeline::{
    analyze, AnalysisConfig, AnalysisSnapshot, AnalysisSource, GraphClustering, KSelection,
    ParameterClustering,
};
