//! Seeded, deterministic k-means over flat `f32` vectors.
//!
//! The clustering that turns "the models look specialised" into a
//! number must itself be reproducible, or the metric columns it feeds
//! would differ between reruns and worker counts. Three choices pin
//! the output to the `(points, config)` pair alone:
//!
//! * **k-means++ initialisation from a derived seed stream** — every
//!   random draw comes from one `StdRng` seeded via
//!   [`derive_seed`](dagfl_core::derive_seed), so initial centroids
//!   depend only on the data and the seed, never on scheduling.
//! * **Fixed iteration order** — points are assigned in index order and
//!   centroids are recomputed from members in index order (through
//!   [`average_parameters`](dagfl_nn::average_parameters), the same
//!   accumulation the training hot path uses), so float rounding is
//!   identical run to run and at any `--jobs`.
//! * **Deterministic empty-cluster reseeding** — an emptied cluster is
//!   re-anchored on the point farthest from its current centroid
//!   (lowest index on ties) instead of a fresh random draw.
//!
//! [`auto_k`] wraps the core loop in a silhouette sweep over a k range,
//! the unsupervised model-selection step the analysis layer uses when a
//! scenario does not fix `k`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dagfl_core::derive_seed;
use dagfl_nn::average_parameters;

use crate::metrics::silhouette_score;

/// Configuration of one deterministic k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansConfig {
    /// Number of clusters (clamped to the number of points).
    pub k: usize,
    /// Upper bound on Lloyd iterations (the loop also stops at the
    /// first iteration that changes no assignment).
    pub max_iterations: usize,
    /// Master seed for the k-means++ draws.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 50,
            seed: 42,
        }
    }
}

/// The result of a [`kmeans`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// The effective cluster count (requested `k` clamped to the number
    /// of points).
    pub k: usize,
    /// Cluster index per input point, in input order.
    pub assignments: Vec<usize>,
    /// Final centroid per cluster.
    pub centroids: Vec<Vec<f32>>,
    /// Sum of squared point-to-centroid distances.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

/// Squared Euclidean distance, accumulated in `f64` so long parameter
/// vectors don't lose the low bits that break assignment ties.
pub(crate) fn squared_distance(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum()
}

/// Index of the nearest centroid (lowest index on exact ties).
fn nearest(point: &[f32], centroids: &[Vec<f32>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_distance(point, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ initial centroids (Arthur & Vassilvitskii 2007): the first
/// centre is drawn uniformly, each further centre with probability
/// proportional to its squared distance from the nearest chosen centre.
/// All draws come from the seed-derived RNG, so the choice is a pure
/// function of `(points, k, seed)`.
fn plus_plus_init(points: &[Vec<f32>], k: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x4B4D_4541)); // "KMEA"
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let distances: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = distances.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a chosen centre; any index works
            // and the lowest unused one keeps the choice deterministic.
            distances.len().saturating_sub(centroids.len()) % points.len()
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in distances.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
    }
    centroids
}

/// Runs seeded k-means over `points` and returns the assignment.
///
/// `k` is clamped to `points.len()`; zero points yield an empty
/// assignment with `k = 0`. Identical `(points, config)` always produce
/// identical output — the determinism contract the scenario layer's
/// `--jobs`-invariance tests assert.
///
/// # Panics
///
/// Panics if the points differ in length.
pub fn kmeans(points: &[Vec<f32>], config: &KMeansConfig) -> KMeansResult {
    let n = points.len();
    let k = config.k.min(n);
    if k == 0 {
        return KMeansResult {
            k: 0,
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let dim = points[0].len();
    for p in points {
        assert_eq!(p.len(), dim, "points differ in length");
    }
    let mut centroids = plus_plus_init(points, k, config.seed);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..config.max_iterations.max(1) {
        iterations += 1;
        // Assignment step, in index order.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (c, _) = nearest(p, &centroids);
            if assignments[i] != c {
                assignments[i] = c;
                changed = true;
            }
        }
        // Deterministic empty-cluster reseeding: re-anchor each emptied
        // cluster on the point farthest from its own centroid (lowest
        // index on ties), then reassign that point.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if assignments.contains(&c) {
                continue;
            }
            let mut far = 0;
            let mut far_d = -1.0;
            for (i, p) in points.iter().enumerate() {
                // Never steal a cluster's only member.
                let donor = assignments[i];
                if assignments.iter().filter(|&&a| a == donor).count() <= 1 {
                    continue;
                }
                let d = squared_distance(p, centroid);
                if d > far_d {
                    far_d = d;
                    far = i;
                }
            }
            assignments[far] = c;
            *centroid = points[far].clone();
            changed = true;
        }
        // Update step: each centroid is the mean of its members in index
        // order, through the shared `average_parameters` accumulation.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&[f32]> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| assignments[*i] == c)
                .map(|(_, p)| p.as_slice())
                .collect();
            if !members.is_empty() {
                *centroid = average_parameters(&members);
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &c)| squared_distance(p, &centroids[c]))
        .sum();
    KMeansResult {
        k,
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

/// Picks `k` by a silhouette sweep: runs [`kmeans`] for every `k` in
/// `min..=max` (clamped to the number of points) and returns the run
/// with the highest silhouette score, preferring the smaller `k` on
/// ties. Falls back to a single `k = min` run when the range collapses.
pub fn auto_k(points: &[Vec<f32>], min: usize, max: usize, config: &KMeansConfig) -> KMeansResult {
    let n = points.len();
    let lo = min.max(1).min(n.max(1));
    let hi = max.max(lo).min(n.max(1));
    let mut best: Option<(f64, KMeansResult)> = None;
    for k in lo..=hi {
        let result = kmeans(points, &KMeansConfig { k, ..*config });
        let score = silhouette_score(points, &result.assignments);
        match &best {
            Some((best_score, _)) if score <= *best_score => {}
            _ => best = Some((score, result)),
        }
    }
    best.map(|(_, r)| r)
        .unwrap_or_else(|| kmeans(points, &KMeansConfig { k: lo, ..*config }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        // Two tight, well-separated blobs of three points each.
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn separates_obvious_blobs() {
        let result = kmeans(&blobs(), &KMeansConfig::default());
        assert_eq!(result.k, 2);
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[0], result.assignments[2]);
        assert_eq!(result.assignments[3], result.assignments[4]);
        assert_eq!(result.assignments[3], result.assignments[5]);
        assert_ne!(result.assignments[0], result.assignments[3]);
        assert!(result.inertia < 0.1, "inertia {}", result.inertia);
    }

    #[test]
    fn same_seed_same_result_different_seed_may_differ() {
        let points = blobs();
        let config = KMeansConfig {
            k: 2,
            seed: 7,
            ..KMeansConfig::default()
        };
        assert_eq!(kmeans(&points, &config), kmeans(&points, &config));
    }

    #[test]
    fn k_is_clamped_to_the_point_count() {
        let points = vec![vec![0.0], vec![1.0]];
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 5,
                ..KMeansConfig::default()
            },
        );
        assert_eq!(result.k, 2);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn zero_points_yield_an_empty_result() {
        let result = kmeans(&[], &KMeansConfig::default());
        assert_eq!(result.k, 0);
        assert!(result.assignments.is_empty());
    }

    #[test]
    fn identical_points_terminate_and_fill_every_cluster() {
        let points = vec![vec![1.0, 2.0]; 4];
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                ..KMeansConfig::default()
            },
        );
        assert_eq!(result.assignments.len(), 4);
        assert!(result.iterations <= KMeansConfig::default().max_iterations);
    }

    #[test]
    fn auto_k_recovers_the_blob_count() {
        let result = auto_k(&blobs(), 2, 4, &KMeansConfig::default());
        assert_eq!(result.k, 2, "assignments {:?}", result.assignments);
    }

    #[test]
    fn auto_k_handles_degenerate_ranges() {
        let points = vec![vec![0.0], vec![5.0]];
        // Range larger than the point count collapses to n.
        let result = auto_k(&points, 3, 9, &KMeansConfig::default());
        assert_eq!(result.assignments.len(), 2);
        // Empty input.
        let result = auto_k(&[], 2, 4, &KMeansConfig::default());
        assert!(result.assignments.is_empty());
    }
}
