//! The approval-graph view of specialization: affinity matrices and
//! deterministic label-propagation community detection.
//!
//! `G_clients` (one node per client, edge weight = pairwise approval
//! count) is the structure the paper eyeballs for Figure 4. This module
//! quantifies it: [`affinity_matrix`] materialises the pairwise
//! approval counts, [`label_propagation`] finds communities, and
//! [`modularity`](dagfl_graphs::modularity) (re-used from
//! `dagfl-graphs`) scores them.
//!
//! Label propagation (Raghavan et al. 2007) is normally randomised;
//! this implementation is deterministic so the community columns in
//! sweep CSVs are reproducible: nodes update in index order, each node
//! adopts the incident-weight-maximal neighbour label with the
//! *smallest label id* winning ties, and the sweep loop is capped so it
//! terminates on any input (oscillating labelings included).

use dagfl_graphs::{compact_labels, Graph};

/// The dense symmetric affinity matrix of a graph: `matrix[a][b]` is
/// the accumulated edge weight between `a` and `b` (pairwise approval
/// counts for `G_clients`), with self-loop weight on the diagonal.
pub fn affinity_matrix(graph: &Graph) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let mut matrix = vec![vec![0.0; n]; n];
    for (a, b, w) in graph.edges() {
        matrix[a][b] += w;
        if a != b {
            matrix[b][a] += w;
        }
    }
    matrix
}

/// Deterministic label propagation over a weighted graph; returns one
/// community label per node, compacted to `0..count`.
///
/// Every node starts in its own community. In each sweep (ascending
/// node order) a node adopts the label with the largest total incident
/// edge weight among its neighbours, keeping its current label when no
/// neighbour label strictly beats it and breaking weight ties toward
/// the smallest label id. The loop stops at the first sweep that
/// changes nothing, or after `max_sweeps` — so it terminates on every
/// input, which the crate's proptests assert.
pub fn label_propagation(graph: &Graph, max_sweeps: usize) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut labels: Vec<usize> = (0..n).collect();
    for _ in 0..max_sweeps {
        let mut changed = false;
        for node in 0..n {
            // `Graph::neighbors` iterates a HashMap; sort so the
            // accumulated tallies (and their float rounding) are in a
            // fixed order regardless of hash state.
            let mut neighbors: Vec<(usize, f64)> = graph
                .neighbors(node)
                .filter(|&(other, _)| other != node)
                .collect();
            if neighbors.is_empty() {
                continue;
            }
            neighbors.sort_by_key(|&(other, _)| other);
            // Tally incident weight per neighbour label.
            let mut tallies: Vec<(usize, f64)> = Vec::new();
            for (other, weight) in neighbors {
                let label = labels[other];
                match tallies.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, w)) => *w += weight,
                    None => tallies.push((label, weight)),
                }
            }
            let (mut best_label, mut best_weight) = tallies[0];
            for &(label, weight) in &tallies[1..] {
                if weight > best_weight || (weight == best_weight && label < best_label) {
                    best_label = label;
                    best_weight = weight;
                }
            }
            // Keep the current label unless a neighbour label strictly
            // dominates it — the damping that lets the loop converge.
            let own_weight = tallies
                .iter()
                .find(|(l, _)| *l == labels[node])
                .map_or(0.0, |(_, w)| *w);
            if best_weight > own_weight && best_label != labels[node] {
                labels[node] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    compact_labels(&labels)
}

/// Default sweep cap for [`label_propagation`]: far beyond the 2–5
/// sweeps real approval graphs need, small enough that adversarial
/// inputs still return promptly.
pub const DEFAULT_LABEL_PROPAGATION_SWEEPS: usize = 100;

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        // Nodes 0–2 and 3–5 densely connected, one weak bridge.
        let mut g = Graph::new(6);
        for &(a, b) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            g.add_edge(a, b, 5.0);
        }
        g.add_edge(2, 3, 0.5);
        g
    }

    #[test]
    fn finds_the_two_cliques() {
        let labels = label_propagation(&two_cliques(), DEFAULT_LABEL_PROPAGATION_SWEEPS);
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn is_deterministic_across_calls() {
        let g = two_cliques();
        let a = label_propagation(&g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
        let b = label_propagation(&g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_nodes_keep_their_own_community() {
        let labels = label_propagation(&Graph::new(3), DEFAULT_LABEL_PROPAGATION_SWEEPS);
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_is_fine() {
        assert!(label_propagation(&Graph::new(0), DEFAULT_LABEL_PROPAGATION_SWEEPS).is_empty());
    }

    #[test]
    fn affinity_matrix_is_symmetric_with_loop_diagonal() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        g.add_edge(2, 2, 1.5);
        let m = affinity_matrix(&g);
        assert_eq!(m[0][1], 2.0);
        assert_eq!(m[1][0], 2.0);
        assert_eq!(m[1][2], 3.0);
        assert_eq!(m[2][2], 1.5);
        assert_eq!(m[0][2], 0.0);
    }

    #[test]
    fn communities_score_positive_modularity_on_cliques() {
        let g = two_cliques();
        let labels = label_propagation(&g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
        assert!(dagfl_graphs::modularity(&g, &labels) > 0.3);
    }
}
