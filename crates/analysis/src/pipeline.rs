//! The analysis pipeline: one call per measured round that turns raw
//! run state (client parameter vectors, the approval graph, ground
//! truth) into an [`AnalysisSnapshot`] of specialization metrics.
//!
//! The pipeline is pure: given the same inputs and configuration it
//! returns the same snapshot, on any thread and at any worker count —
//! all randomness flows from the configured seed through
//! [`derive_seed`](dagfl_core::derive_seed) streams. The scenario
//! runner embeds snapshots in `RunReport`s, so this purity is what the
//! `--jobs`-invariance tests ultimately lean on.

use dagfl_graphs::Graph;

use crate::community::{label_propagation, DEFAULT_LABEL_PROPAGATION_SWEEPS};
use crate::kmeans::{auto_k, kmeans, KMeansConfig};
use crate::metrics::{adjusted_rand_index, cluster_purity, silhouette_score};

/// How the cluster count for the parameter-space view is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSelection {
    /// Run k-means with exactly this many clusters.
    Fixed(usize),
    /// Sweep `min..=max` and keep the k with the best silhouette.
    Auto {
        /// Smallest cluster count to try (at least 2).
        min: usize,
        /// Largest cluster count to try.
        max: usize,
    },
}

impl Default for KSelection {
    fn default() -> Self {
        Self::Auto { min: 2, max: 6 }
    }
}

/// Which run state feeds the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisSource {
    /// Cluster the flat client parameter vectors only.
    Parameters,
    /// Detect communities in the approval graph only.
    Approvals,
    /// Both views, plus their agreement ARI.
    #[default]
    Both,
}

impl AnalysisSource {
    /// The canonical spelling used by scenario files and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Parameters => "parameters",
            Self::Approvals => "approvals",
            Self::Both => "both",
        }
    }

    /// Parses the canonical spelling.
    pub fn parse(word: &str) -> Option<Self> {
        match word {
            "parameters" => Some(Self::Parameters),
            "approvals" => Some(Self::Approvals),
            "both" => Some(Self::Both),
            _ => None,
        }
    }

    /// Whether the parameter-space (k-means) view runs.
    pub fn wants_parameters(self) -> bool {
        matches!(self, Self::Parameters | Self::Both)
    }

    /// Whether the approval-graph (community) view runs.
    pub fn wants_approvals(self) -> bool {
        matches!(self, Self::Approvals | Self::Both)
    }
}

/// Configuration of one [`analyze`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisConfig {
    /// Cluster-count selection for the parameter-space view.
    pub k: KSelection,
    /// Which views to compute.
    pub source: AnalysisSource,
    /// Master seed; k-means draws derive from it.
    pub seed: u64,
}

/// The parameter-space (k-means) half of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterClustering {
    /// The cluster count actually used (after auto-k / clamping).
    pub k: usize,
    /// Cluster index per client, in client order.
    pub assignments: Vec<usize>,
    /// Mean silhouette of the assignment, in `[-1, 1]`.
    pub silhouette: f64,
    /// Purity against the dataset's ground-truth clusters.
    pub purity: f64,
    /// Adjusted Rand index against the ground-truth clusters.
    pub ari: f64,
}

/// The approval-graph (label-propagation) half of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphClustering {
    /// Community index per client, in client order.
    pub communities: Vec<usize>,
    /// Number of distinct communities.
    pub community_count: usize,
    /// Newman–Girvan modularity of the community partition.
    pub modularity: f64,
    /// Purity against the dataset's ground-truth clusters.
    pub purity: f64,
    /// Adjusted Rand index against the ground-truth clusters.
    pub ari: f64,
}

/// One measured round of specialization analytics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSnapshot {
    /// The round the snapshot was taken after (1-based; equals the
    /// final round for end-of-run snapshots).
    pub round: usize,
    /// Parameter-space view, when the source includes parameters.
    pub parameters: Option<ParameterClustering>,
    /// Approval-graph view, when the source includes approvals.
    pub graph: Option<GraphClustering>,
    /// ARI between the two views' partitions, when both ran.
    pub agreement_ari: Option<f64>,
}

/// Runs the configured views over one round's raw state.
///
/// `params` holds one flat parameter vector per client and `graph` the
/// client approval graph; either may be `None` when the source does not
/// need it. `truth` is the dataset's ground-truth cluster label per
/// client, used for purity and ARI.
pub fn analyze(
    round: usize,
    params: Option<&[Vec<f32>]>,
    graph: Option<&Graph>,
    truth: &[usize],
    config: &AnalysisConfig,
) -> AnalysisSnapshot {
    let parameters = match (config.source.wants_parameters(), params) {
        (true, Some(points)) => {
            let base = KMeansConfig {
                seed: config.seed,
                ..KMeansConfig::default()
            };
            let result = match config.k {
                KSelection::Fixed(k) => kmeans(points, &KMeansConfig { k, ..base }),
                KSelection::Auto { min, max } => auto_k(points, min, max, &base),
            };
            let silhouette = silhouette_score(points, &result.assignments);
            Some(ParameterClustering {
                k: result.k,
                purity: cluster_purity(&result.assignments, truth),
                ari: adjusted_rand_index(&result.assignments, truth),
                silhouette,
                assignments: result.assignments,
            })
        }
        _ => None,
    };
    let graph = match (config.source.wants_approvals(), graph) {
        (true, Some(g)) => {
            let communities = label_propagation(g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
            let community_count = communities.iter().copied().max().map_or(0, |m| m + 1);
            Some(GraphClustering {
                modularity: dagfl_graphs::modularity(g, &communities),
                purity: cluster_purity(&communities, truth),
                ari: adjusted_rand_index(&communities, truth),
                community_count,
                communities,
            })
        }
        _ => None,
    };
    let agreement_ari = match (&parameters, &graph) {
        (Some(p), Some(g)) => Some(adjusted_rand_index(&p.assignments, &g.communities)),
        _ => None,
    };
    AnalysisSnapshot {
        round,
        parameters,
        graph,
        agreement_ari,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_points() -> Vec<Vec<f32>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![9.0, 9.0],
            vec![9.1, 9.1],
        ]
    }

    fn clique_graph() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 4.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(1, 2, 0.5);
        g
    }

    #[test]
    fn both_views_agree_on_clean_structure() {
        let truth = [0, 0, 1, 1];
        let snapshot = analyze(
            3,
            Some(&blob_points()),
            Some(&clique_graph()),
            &truth,
            &AnalysisConfig {
                k: KSelection::Fixed(2),
                ..AnalysisConfig::default()
            },
        );
        assert_eq!(snapshot.round, 3);
        let p = snapshot.parameters.expect("parameter view");
        assert_eq!(p.k, 2);
        assert!((p.purity - 1.0).abs() < 1e-12);
        assert!((p.ari - 1.0).abs() < 1e-12);
        let g = snapshot.graph.expect("graph view");
        assert_eq!(g.community_count, 2);
        assert!((g.ari - 1.0).abs() < 1e-12);
        assert!((snapshot.agreement_ari.expect("agreement") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_gates_the_views() {
        let truth = [0, 0, 1, 1];
        let params_only = analyze(
            1,
            Some(&blob_points()),
            Some(&clique_graph()),
            &truth,
            &AnalysisConfig {
                source: AnalysisSource::Parameters,
                ..AnalysisConfig::default()
            },
        );
        assert!(params_only.parameters.is_some());
        assert!(params_only.graph.is_none());
        assert!(params_only.agreement_ari.is_none());
        let approvals_only = analyze(
            1,
            Some(&blob_points()),
            Some(&clique_graph()),
            &truth,
            &AnalysisConfig {
                source: AnalysisSource::Approvals,
                ..AnalysisConfig::default()
            },
        );
        assert!(approvals_only.parameters.is_none());
        assert!(approvals_only.graph.is_some());
    }

    #[test]
    fn auto_k_selection_is_used_by_default() {
        let truth = [0, 0, 1, 1];
        let snapshot = analyze(
            1,
            Some(&blob_points()),
            None,
            &truth,
            &AnalysisConfig::default(),
        );
        let p = snapshot.parameters.expect("parameter view");
        assert_eq!(p.k, 2, "auto-k should find the two blobs");
    }

    #[test]
    fn analyze_is_deterministic() {
        let truth = [0, 0, 1, 1];
        let run = || {
            analyze(
                2,
                Some(&blob_points()),
                Some(&clique_graph()),
                &truth,
                &AnalysisConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn source_spellings_round_trip() {
        for source in [
            AnalysisSource::Parameters,
            AnalysisSource::Approvals,
            AnalysisSource::Both,
        ] {
            assert_eq!(AnalysisSource::parse(source.as_str()), Some(source));
        }
        assert_eq!(AnalysisSource::parse("graph"), None);
    }
}
