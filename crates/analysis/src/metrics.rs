//! Clustering quality metrics: silhouette, purity and the adjusted
//! Rand index.
//!
//! Two of the three need ground truth — purity and ARI score a
//! clustering against the dataset's known cluster labels, which the
//! synthetic federated datasets all carry. Silhouette is fully
//! unsupervised and doubles as the model-selection criterion for
//! [`auto_k`](crate::kmeans::auto_k). ARI is also how the analysis
//! layer reports *agreement between two clusterings* (parameter-space
//! k-means vs approval-graph communities), since it is symmetric and
//! invariant under label permutation.

use crate::kmeans::squared_distance;

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// For each point, `a` is its mean distance to its own cluster's other
/// members and `b` the smallest mean distance to any other cluster; the
/// point's silhouette is `(b - a) / max(a, b)`. Singleton clusters
/// score 0 for their member (the standard convention), and clusterings
/// with fewer than two clusters or two points score 0 overall — there
/// is no between-cluster structure to measure.
pub fn silhouette_score(points: &[Vec<f32>], assignments: &[usize]) -> f64 {
    assert_eq!(points.len(), assignments.len(), "one label per point");
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut labels: Vec<usize> = assignments.to_vec();
    labels.sort_unstable();
    labels.dedup();
    if labels.len() < 2 {
        return 0.0;
    }
    // Euclidean (not squared) distances, per the standard definition.
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        let mut own_sum = 0.0;
        let mut own_count = 0usize;
        // Mean distance to every foreign cluster, tracked per label.
        let mut foreign: Vec<(usize, f64, usize)> = labels
            .iter()
            .filter(|&&l| l != own)
            .map(|&l| (l, 0.0, 0))
            .collect();
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = squared_distance(&points[i], &points[j]).sqrt();
            if assignments[j] == own {
                own_sum += d;
                own_count += 1;
            } else if let Some(entry) = foreign.iter_mut().find(|(l, _, _)| *l == assignments[j]) {
                entry.1 += d;
                entry.2 += 1;
            }
        }
        if own_count == 0 {
            // Singleton cluster: silhouette 0 by convention.
            continue;
        }
        let a = own_sum / own_count as f64;
        let b = foreign
            .iter()
            .filter(|(_, _, count)| *count > 0)
            .map(|(_, sum, count)| sum / *count as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    (total / n as f64).clamp(-1.0, 1.0)
}

/// Cluster purity against ground-truth labels, in `[0, 1]`.
///
/// Each predicted cluster is credited with its most common true label;
/// purity is the credited fraction of all points. A clustering that
/// shatters every true cluster into singletons still scores 1, so
/// purity is read together with the cluster count and ARI.
pub fn cluster_purity(assignments: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(assignments.len(), truth.len(), "one truth label per point");
    let n = assignments.len();
    if n == 0 {
        return 0.0;
    }
    let mut clusters: Vec<usize> = assignments.to_vec();
    clusters.sort_unstable();
    clusters.dedup();
    let mut credited = 0usize;
    for &c in &clusters {
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for (a, &t) in assignments.iter().zip(truth) {
            if *a == c {
                match counts.iter_mut().find(|(label, _)| *label == t) {
                    Some((_, count)) => *count += 1,
                    None => counts.push((t, 1)),
                }
            }
        }
        credited += counts.iter().map(|(_, count)| *count).max().unwrap_or(0);
    }
    credited as f64 / n as f64
}

/// The adjusted Rand index between two partitions, chance-corrected so
/// random labelings score near 0 and identical partitions (up to label
/// permutation) score exactly 1.
///
/// Degenerate pairs where the expected index equals the maximum index
/// (e.g. both partitions put everything in one cluster) are defined as
/// 1 when the partitions induce the same grouping and 0 otherwise.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions label the same points");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let labels_of = |xs: &[usize]| {
        let mut labels: Vec<usize> = xs.to_vec();
        labels.sort_unstable();
        labels.dedup();
        labels
    };
    let la = labels_of(a);
    let lb = labels_of(b);
    // Contingency table.
    let mut table = vec![vec![0u64; lb.len()]; la.len()];
    for (&x, &y) in a.iter().zip(b) {
        let i = la.binary_search(&x).expect("label present");
        let j = lb.binary_search(&y).expect("label present");
        table[i][j] += 1;
    }
    let choose2 = |m: u64| (m * m.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&m| choose2(m))
        .sum();
    let sum_a: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<u64>()))
        .sum();
    let sum_b: f64 = (0..lb.len())
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON {
        // Both partitions are trivial (all-one-cluster or all-singletons
        // on both sides): identical grouping scores 1, anything else 0.
        return if sum_ij == sum_a && sum_ij == sum_b {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silhouette_is_high_for_separated_blobs() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![10.0, 10.0],
            vec![10.2, 10.0],
        ];
        let score = silhouette_score(&points, &[0, 0, 1, 1]);
        assert!(score > 0.9, "score {score}");
        // A deliberately wrong split scores far lower.
        let bad = silhouette_score(&points, &[0, 1, 0, 1]);
        assert!(bad < score, "bad {bad} >= good {score}");
    }

    #[test]
    fn silhouette_degenerate_inputs_are_zero() {
        assert_eq!(silhouette_score(&[], &[]), 0.0);
        assert_eq!(silhouette_score(&[vec![1.0]], &[0]), 0.0);
        // One cluster: no between-cluster structure.
        assert_eq!(
            silhouette_score(&[vec![0.0], vec![1.0], vec![2.0]], &[0, 0, 0]),
            0.0
        );
    }

    #[test]
    fn purity_rewards_pure_clusters() {
        assert_eq!(cluster_purity(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
        assert_eq!(cluster_purity(&[0, 0, 0, 0], &[0, 0, 1, 1]), 0.5);
        // Singleton shattering is trivially pure — why ARI exists.
        assert_eq!(cluster_purity(&[0, 1, 2, 3], &[0, 0, 1, 1]), 1.0);
        assert_eq!(cluster_purity(&[], &[]), 0.0);
    }

    #[test]
    fn ari_is_one_for_identical_partitions_up_to_relabeling() {
        let truth = [0, 0, 1, 1, 2, 2];
        let relabeled = [7, 7, 3, 3, 5, 5];
        assert!((adjusted_rand_index(&truth, &relabeled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_is_low_for_unrelated_partitions() {
        // A split orthogonal to the truth.
        let truth = [0, 0, 0, 1, 1, 1];
        let other = [0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&truth, &other) < 0.1);
    }

    #[test]
    fn ari_handles_trivial_partitions() {
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[1, 1, 1]), 1.0);
        assert_eq!(adjusted_rand_index(&[0, 1, 2], &[5, 6, 7]), 1.0);
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[0, 1, 2]), 0.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[3], &[9]), 1.0);
    }

    #[test]
    fn ari_is_symmetric() {
        let a = [0, 0, 1, 1, 2, 2, 0, 1];
        let b = [0, 1, 1, 1, 2, 0, 0, 1];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }
}
