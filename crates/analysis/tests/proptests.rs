//! Property-based tests for the analytics subsystem's determinism and
//! metric-range contracts.

use dagfl_analysis::{
    adjusted_rand_index, kmeans, label_propagation, silhouette_score, KMeansConfig,
    DEFAULT_LABEL_PROPAGATION_SWEEPS,
};
use dagfl_graphs::Graph;
use proptest::prelude::*;

/// A set of same-length points with bounded coordinates.
fn arbitrary_points(max_points: usize, max_dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1..=max_points, 1..=max_dim).prop_flat_map(|(n, dim)| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, dim..=dim),
            n..=n,
        )
    })
}

fn arbitrary_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (1..=max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 0..max_edges).prop_map(move |edges| {
            let mut g = Graph::new(n);
            for (a, b, w) in edges {
                g.add_edge(a, b, w);
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn kmeans_same_seed_is_deterministic(
        points in arbitrary_points(12, 4),
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let config = KMeansConfig { k, seed, ..KMeansConfig::default() };
        let a = kmeans(&points, &config);
        let b = kmeans(&points, &config);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn kmeans_assignments_are_permutation_invariant_up_to_relabeling(
        k in 2usize..5,
        per_blob in 2usize..5,
        dim in 1usize..4,
        jitter in proptest::collection::vec(-0.5f32..0.5, 0..64),
        priorities in proptest::collection::vec(any::<u32>(), 16..=16),
        seed in any::<u64>(),
    ) {
        // On separable data, clustering the clients in any order must
        // induce the same partition of the *clients* — cluster ids may
        // differ, so equality is checked as ARI == 1.0. Blobs are spaced
        // far enough apart that k-means++ recovers them from every
        // permutation of the input; only an order-dependence bug in the
        // init, assignment or update loops could break the property.
        let n = k * per_blob;
        let points: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let blob = i % k;
                (0..dim)
                    .map(|d| {
                        let j = jitter.get((i * dim + d) % jitter.len().max(1)).copied().unwrap_or(0.0);
                        (blob as f32) * 1.0e4 + j
                    })
                    .collect()
            })
            .collect();
        // A permutation from the random priorities: argsort with index
        // tie-break.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (priorities[i % priorities.len()], i));
        let permuted: Vec<Vec<f32>> = order.iter().map(|&i| points[i].clone()).collect();
        let config = KMeansConfig { k, seed, ..KMeansConfig::default() };
        let base = kmeans(&points, &config);
        let shuffled = kmeans(&permuted, &config);
        // Map the permuted assignment back onto original client indices.
        let mut unpermuted = vec![0usize; n];
        for (j, &c) in shuffled.assignments.iter().enumerate() {
            unpermuted[order[j]] = c;
        }
        let ari = adjusted_rand_index(&base.assignments, &unpermuted);
        prop_assert!((ari - 1.0).abs() < 1e-12, "ari = {ari}");
    }

    #[test]
    fn silhouette_stays_in_unit_interval(
        points in arbitrary_points(12, 4),
        labels in proptest::collection::vec(0usize..5, 1..12),
    ) {
        let n = points.len().min(labels.len());
        let score = silhouette_score(&points[..n], &labels[..n]);
        prop_assert!((-1.0..=1.0).contains(&score), "score = {score}");
    }

    #[test]
    fn label_propagation_terminates_and_labels_every_node(
        g in arbitrary_graph(14, 40),
    ) {
        // The sweep cap bounds the loop on any input; the call returning
        // at all is the termination property.
        let labels = label_propagation(&g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
        prop_assert_eq!(labels.len(), g.num_nodes());
        // Labels are compacted to 0..count.
        let count = labels.iter().copied().max().map_or(0, |m| m + 1);
        prop_assert!(labels.iter().all(|&l| l < count || count == 0));
    }

    #[test]
    fn label_propagation_is_deterministic(g in arbitrary_graph(10, 25)) {
        let a = label_propagation(&g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
        let b = label_propagation(&g, DEFAULT_LABEL_PROPAGATION_SWEEPS);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ari_of_identical_partitions_is_one(
        labels in proptest::collection::vec(0usize..6, 1..20),
        offset in 1usize..9,
    ) {
        let relabeled: Vec<usize> = labels.iter().map(|&l| l + offset).collect();
        let ari = adjusted_rand_index(&labels, &relabeled);
        prop_assert!((ari - 1.0).abs() < 1e-12, "ari = {ari}");
    }
}
