//! `dagfl perf`: the walk-evaluation and training performance smoke.
//!
//! Runs accuracy-biased walks over a synthetic paper-scale model tangle
//! with cold and warm caches, and writes the headline numbers
//! (evaluations per second, fresh-eval ratio, wall time) to
//! `BENCH_walk.json` so CI can archive one data point per commit and the
//! performance trajectory of the evaluation pipeline is diffable across
//! PRs.
//!
//! A training phase times full SGD steps (forward + backward + update)
//! over a paper-scale MLP on the naive and tiled matmul backends,
//! cross-checks that both backends produce bit-identical parameters, and
//! writes the step timings to `BENCH_train.json` alongside the walk
//! numbers.

use std::error::Error;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dagfl_core::{
    perturbed_model_tangle, tangle_digest, AccuracyBias, AsyncConfig, AsyncSimulation, DagConfig,
    DelayModel, EvalCounters, ModelEvaluator, ModelTangle, Normalization,
};
use dagfl_datasets::{fmnist_clustered, fmnist_clustered_streamed, ClientDataset, FmnistConfig};
use dagfl_nn::{MatmulBackendKind, SgdConfig};
use dagfl_scenario::ModelSpec;
use dagfl_tangle::RandomWalker;

use crate::args::ParsedArgs;

/// One measured phase of the smoke (cold or warm cache).
struct Phase {
    wall: Duration,
    counters: EvalCounters,
    walk_steps: usize,
}

impl Phase {
    /// Fresh (forward-pass) evaluations per second of wall time.
    fn evals_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.counters.fresh as f64 / secs
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"wall_ms\": {:.3}, \"fresh_evals\": {}, \"cached_evals\": {}, \
             \"evals_per_sec\": {:.1}, \"fresh_eval_ratio\": {:.4}, \"walk_steps\": {}}}",
            self.wall.as_secs_f64() * 1e3,
            self.counters.fresh,
            self.counters.cached,
            self.evals_per_sec(),
            self.counters.fresh_ratio(),
            self.walk_steps,
        )
    }
}

/// Runs `walks` biased walks; when `cold` every walk starts with an
/// invalidated cache.
fn run_phase(
    tangle: &ModelTangle,
    evaluator: &mut ModelEvaluator,
    client: &ClientDataset,
    alpha: f32,
    walks: usize,
    cold: bool,
    rng: &mut StdRng,
) -> Phase {
    let before = evaluator.counters();
    let mut walk_steps = 0;
    let started = Instant::now();
    for _ in 0..walks {
        if cold {
            evaluator.invalidate();
        }
        let mut bias = AccuracyBias::new(
            evaluator,
            client.test_x(),
            client.test_y(),
            alpha,
            Normalization::Simple,
        );
        let result = RandomWalker::new()
            .walk(tangle, tangle.genesis(), &mut bias, rng)
            .expect("walk over a well-formed tangle succeeds");
        walk_steps += result.steps;
    }
    Phase {
        wall: started.elapsed(),
        counters: evaluator.counters().since(before),
        walk_steps,
    }
}

/// One measured run of the async scaling phase.
struct AsyncPhase {
    wall: Duration,
    activations: usize,
    digest: u64,
}

impl AsyncPhase {
    /// Completed activations per second of wall time.
    fn activations_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.activations as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs the sharded async event loop end to end with `workers` training
/// threads and returns wall time plus the final tangle digest.
fn run_async_phase(
    clients: usize,
    activations: usize,
    samples: usize,
    workers: usize,
    seed: u64,
) -> Result<AsyncPhase, Box<dyn Error>> {
    let dataset = fmnist_clustered_streamed(
        &FmnistConfig {
            num_clients: clients,
            samples_per_client: samples,
            seed,
            ..FmnistConfig::default()
        },
        workers.max(1),
    );
    let features = dataset.feature_len();
    let factory = ModelSpec::Mlp { hidden: vec![64] }.build_factory(features, 10);
    let config = AsyncConfig {
        dag: DagConfig {
            local_batches: 10,
            batch_size: 10,
            seed,
            ..DagConfig::default()
        },
        total_activations: activations,
        mean_interarrival: 1.0,
        delay: DelayModel::constant(1.0),
        // Long logical training keeps many activations below the finish
        // barrier, so batches are wide enough for the workers to matter.
        train_time: 4.0,
        gossip_fanout: 8,
        workers,
        ..AsyncConfig::default()
    };
    let mut sim = AsyncSimulation::new(config, dataset, factory);
    let started = Instant::now();
    sim.run()?;
    let wall = started.elapsed();
    Ok(AsyncPhase {
        wall,
        activations,
        digest: tangle_digest(sim.tangle()),
    })
}

/// One measured training run: `steps` full SGD steps on one backend,
/// best wall time across repetitions plus the final flat parameters.
struct TrainPhase {
    wall: Duration,
    steps: usize,
    params: Vec<f32>,
}

impl TrainPhase {
    /// Full training steps per second of wall time.
    fn steps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"wall_ms\": {:.3}, \"steps\": {}, \"steps_per_sec\": {:.1}}}",
            self.wall.as_secs_f64() * 1e3,
            self.steps,
            self.steps_per_sec(),
        )
    }
}

/// Times `steps` training steps of the paper-scale MLP on `backend`,
/// best-of-`reps`: every repetition rebuilds the model from the same
/// seed, so all repetitions (and both backends) walk the exact same
/// optimisation trajectory and the returned parameters are comparable
/// bit-for-bit.
fn run_train_phase(
    client: &ClientDataset,
    features: usize,
    backend: MatmulBackendKind,
    steps: usize,
    reps: usize,
    seed: u64,
) -> Result<TrainPhase, Box<dyn Error>> {
    let factory = ModelSpec::Mlp { hidden: vec![64] }.build_factory(features, 10);
    let opt = SgdConfig::new(0.05);
    let mut best = Duration::MAX;
    let mut params = Vec::new();
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = factory(&mut rng);
        model.set_matmul_backend(backend);
        let started = Instant::now();
        for _ in 0..steps {
            model.train_batch(client.test_x(), client.test_y(), &opt)?;
        }
        best = best.min(started.elapsed());
        params = model.parameters();
    }
    Ok(TrainPhase {
        wall: best,
        steps,
        params,
    })
}

/// Entry point for `dagfl perf`.
///
/// # Errors
///
/// Returns an error for unparsable flags, out-of-range flag values, an
/// unwritable output path, or an async phase whose worker counts
/// disagree on the final tangle digest (a determinism bug).
pub fn perf_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let transactions: usize = args.get_parsed_or("transactions", 500)?;
    let walks: usize = args.get_parsed_or("walks", 20)?;
    let samples: usize = args.get_parsed_or("samples", 240)?;
    let alpha: f32 = args.get_parsed_or("alpha", 10.0)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    // Default to one activation per client: the opening burst (no
    // finishes queued yet) forms one maximally wide training batch, so
    // the phase measures parallel training throughput rather than the
    // narrow steady-state batches of a saturated schedule.
    let clients: usize = args.get_parsed_or("clients", 64)?;
    let workers: usize = args.get_parsed_or("workers", 4)?;
    let activations: usize = args.get_parsed_or("activations", clients)?;
    let train_steps: usize = args.get_parsed_or("train-steps", 60)?;
    if transactions == 0 || walks == 0 || samples < 10 {
        return Err("perf needs --transactions >= 1, --walks >= 1, --samples >= 10".into());
    }
    if clients < 3 || workers == 0 || activations == 0 {
        return Err(
            "perf needs --clients >= 3 (one per data cluster), --workers >= 1, --activations >= 1"
                .into(),
        );
    }
    if train_steps == 0 {
        return Err("perf needs --train-steps >= 1".into());
    }

    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 3,
        samples_per_client: samples,
        seed,
        ..FmnistConfig::default()
    });
    let client = &dataset.clients()[0];
    let factory = ModelSpec::Mlp { hidden: vec![64] }.build_factory(dataset.feature_len(), 10);
    let mut rng = StdRng::seed_from_u64(seed);
    let model = factory(&mut rng);
    let params = model.parameters();
    let tangle = perturbed_model_tangle(transactions, &params, seed.wrapping_add(1));
    let mut evaluator = ModelEvaluator::new(model);

    eprintln!(
        "# perf: {} transactions, {} walks per phase, {} test rows, alpha {}",
        transactions,
        walks,
        client.test_y().len(),
        alpha
    );
    let mut walk_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let cold = run_phase(
        &tangle,
        &mut evaluator,
        client,
        alpha,
        walks,
        true,
        &mut walk_rng,
    );
    // Warm phase: one priming walk already happened per cold iteration;
    // without invalidation the cache now answers almost everything.
    let warm = run_phase(
        &tangle,
        &mut evaluator,
        client,
        alpha,
        walks,
        false,
        &mut walk_rng,
    );

    // Async scaling phase: the same event schedule at one worker and at
    // `workers` threads. The digests must agree — batching is decided by
    // event times alone, never thread timing.
    eprintln!(
        "# perf async: {} clients, {} activations, 1 vs {} workers",
        clients, activations, workers
    );
    let serial = run_async_phase(clients, activations, samples, 1, seed)?;
    let parallel = run_async_phase(clients, activations, samples, workers, seed)?;
    if serial.digest != parallel.digest {
        return Err(format!(
            "async digest mismatch: 1 worker {:#018x} vs {} workers {:#018x}",
            serial.digest, workers, parallel.digest
        )
        .into());
    }
    let speedup = if parallel.wall.as_secs_f64() > 0.0 {
        serial.wall.as_secs_f64() / parallel.wall.as_secs_f64()
    } else {
        0.0
    };

    // Training phase: the same model, batch and seed stepped on both
    // matmul backends. The backends must agree bit-for-bit on the final
    // parameters — the whole point of the tiled port is speed with zero
    // numeric drift.
    eprintln!(
        "# perf train: {} steps x best-of-3, {} x {} batch, naive vs tiled",
        train_steps,
        client.test_y().len(),
        dataset.feature_len(),
    );
    let naive = run_train_phase(
        client,
        dataset.feature_len(),
        MatmulBackendKind::Naive,
        train_steps,
        3,
        seed,
    )?;
    let tiled = run_train_phase(
        client,
        dataset.feature_len(),
        MatmulBackendKind::Tiled,
        train_steps,
        3,
        seed,
    )?;
    let identical = naive.params.len() == tiled.params.len()
        && naive
            .params
            .iter()
            .zip(&tiled.params)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !identical {
        return Err(format!(
            "train backend mismatch: naive and tiled parameters diverged after {train_steps} steps"
        )
        .into());
    }
    let train_speedup = if tiled.wall.as_secs_f64() > 0.0 {
        naive.wall.as_secs_f64() / tiled.wall.as_secs_f64()
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"bench\": \"walk_eval\",\n  \"transactions\": {},\n  \"walks\": {},\n  \
         \"test_rows\": {},\n  \"model_parameters\": {},\n  \"alpha\": {},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \"async\": {{\"clients\": {}, \"workers\": {}, \
         \"activations\": {}, \"serial_wall_ms\": {:.3}, \"parallel_wall_ms\": {:.3}, \
         \"activations_per_sec\": {:.1}, \"speedup\": {:.3}, \"digest\": \"{:#018x}\"}}\n}}\n",
        transactions,
        walks,
        client.test_y().len(),
        params.len(),
        alpha,
        cold.json(),
        warm.json(),
        clients,
        workers,
        activations,
        serial.wall.as_secs_f64() * 1e3,
        parallel.wall.as_secs_f64() * 1e3,
        parallel.activations_per_sec(),
        speedup,
        serial.digest,
    );
    let path = match args.get("out") {
        Some(path) => PathBuf::from(path),
        None => std::env::var("DAGFL_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
            .join("BENCH_walk.json"),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;

    let train_json = format!(
        "{{\n  \"bench\": \"train_step\",\n  \"features\": {},\n  \"hidden\": 64,\n  \
         \"classes\": 10,\n  \"batch_rows\": {},\n  \"model_parameters\": {},\n  \
         \"train_steps\": {},\n  \"reps\": 3,\n  \"naive\": {},\n  \"tiled\": {},\n  \
         \"train_speedup\": {:.3},\n  \"bit_identical\": true\n}}\n",
        dataset.feature_len(),
        client.test_y().len(),
        params.len(),
        train_steps,
        naive.json(),
        tiled.json(),
        train_speedup,
    );
    let train_path = match args.get("train-out") {
        Some(path) => PathBuf::from(path),
        None => std::env::var("DAGFL_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
            .join("BENCH_train.json"),
    };
    if let Some(parent) = train_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&train_path, &train_json)
        .map_err(|e| format!("writing {}: {e}", train_path.display()))?;

    println!(
        "cold: {:.1} evals/sec ({} fresh, {:.3} ms)",
        cold.evals_per_sec(),
        cold.counters.fresh,
        cold.wall.as_secs_f64() * 1e3
    );
    println!(
        "warm: {:.1} evals/sec ({} fresh, {} cached, {:.3} ms, fresh ratio {:.3})",
        warm.evals_per_sec(),
        warm.counters.fresh,
        warm.counters.cached,
        warm.wall.as_secs_f64() * 1e3,
        warm.counters.fresh_ratio()
    );
    println!(
        "async: {:.1} activations/sec at {} workers ({:.3} ms vs {:.3} ms serial, {:.2}x)",
        parallel.activations_per_sec(),
        workers,
        parallel.wall.as_secs_f64() * 1e3,
        serial.wall.as_secs_f64() * 1e3,
        speedup
    );
    println!(
        "train: {:.1} steps/sec tiled vs {:.1} naive ({:.3} ms vs {:.3} ms, {:.2}x, bit-identical)",
        tiled.steps_per_sec(),
        naive.steps_per_sec(),
        tiled.wall.as_secs_f64() * 1e3,
        naive.wall.as_secs_f64() * 1e3,
        train_speedup
    );
    println!("wrote {} and {}", path.display(), train_path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_out(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn perf_smoke_writes_json() {
        let out = temp_out("dagfl_perf_smoke.json");
        let train_out = temp_out("dagfl_perf_smoke_train.json");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&train_out);
        let args = ParsedArgs::parse([
            "perf",
            "--transactions",
            "40",
            "--walks",
            "2",
            "--samples",
            "30",
            "--clients",
            "6",
            "--workers",
            "2",
            "--activations",
            "10",
            "--train-steps",
            "3",
            "--out",
            out.to_str().unwrap(),
            "--train-out",
            train_out.to_str().unwrap(),
        ])
        .unwrap();
        perf_command(&args).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"bench\": \"walk_eval\"",
            "\"transactions\": 40",
            "\"cold\"",
            "\"warm\"",
            "evals_per_sec",
            "fresh_eval_ratio",
            "wall_ms",
            "\"async\"",
            "\"clients\": 6",
            "\"workers\": 2",
            "\"activations\": 10",
            "speedup",
            "digest",
        ] {
            assert!(json.contains(key), "missing `{key}` in {json}");
        }
        let train_json = std::fs::read_to_string(&train_out).unwrap();
        for key in [
            "\"bench\": \"train_step\"",
            "\"train_steps\": 3",
            "\"naive\"",
            "\"tiled\"",
            "steps_per_sec",
            "train_speedup",
            "\"bit_identical\": true",
        ] {
            assert!(train_json.contains(key), "missing `{key}` in {train_json}");
        }
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&train_out);
    }

    #[test]
    fn perf_rejects_degenerate_flags() {
        for flags in [
            ["perf", "--transactions", "0"],
            ["perf", "--walks", "0"],
            ["perf", "--samples", "5"],
            ["perf", "--clients", "2"],
            ["perf", "--workers", "0"],
            ["perf", "--activations", "0"],
            ["perf", "--train-steps", "0"],
        ] {
            let args = ParsedArgs::parse(flags).unwrap();
            let err = perf_command(&args).unwrap_err().to_string();
            assert!(err.contains("perf needs"), "{flags:?}: {err}");
        }
        for flags in [
            ["perf", "--walks", "many"],
            ["perf", "--clients", "lots"],
            ["perf", "--workers", "-1"],
        ] {
            let args = ParsedArgs::parse(flags).unwrap();
            assert!(perf_command(&args).is_err(), "{flags:?} should fail");
        }
    }
}
