//! Builds datasets/models from parsed arguments and runs the experiment.

use std::error::Error;
use std::path::Path;

use dagfl_analysis::AnalysisSource;
use dagfl_baselines::{FedConfig, FederatedServer, LocalOnly};
use dagfl_core::{
    AsyncConfig, AsyncSimulation, ComputeProfile, CoreError, CrashWindow, DagConfig, DelayModel,
    FaultPlan, ModelFactory, Normalization, PartitionWindow, Simulation, StaleTipPolicy,
    TipSelector,
};
use dagfl_datasets::{
    cifar100_like, fedprox_synthetic, fmnist_by_author, fmnist_clustered, poets, Cifar100Config,
    FedProxConfig, FederatedDataset, FmnistConfig, PoetsConfig,
};
use dagfl_nn::MatmulBackendKind;
use dagfl_scenario::{
    ModelSpec, Scale, Scenario, ScenarioRunner, SweepAxis, SweepRunner, SweepSpec,
};

use crate::args::{Command, ParseError, ParsedArgs, USAGE};

/// The selectable datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Strictly clustered synthetic digits (3 clusters).
    Fmnist,
    /// Relaxed clusters (18 % foreign data).
    FmnistRelaxed,
    /// By-author split (all classes per client).
    FmnistAuthor,
    /// Two-language next-character prediction.
    Poets,
    /// 100-class/20-supercluster hierarchy with Pachinko allocation.
    Cifar,
    /// The FedProx synthetic(0.5, 0.5) benchmark.
    FedProxSynthetic,
}

impl DatasetKind {
    /// Parses the `--dataset` value.
    pub fn parse(word: &str) -> Option<Self> {
        match word {
            "fmnist" => Some(Self::Fmnist),
            "fmnist-relaxed" => Some(Self::FmnistRelaxed),
            "fmnist-author" => Some(Self::FmnistAuthor),
            "poets" => Some(Self::Poets),
            "cifar" => Some(Self::Cifar),
            "fedprox-synthetic" => Some(Self::FedProxSynthetic),
            _ => None,
        }
    }
}

/// Dataset + matching model factory for a CLI invocation.
fn build_task(
    kind: DatasetKind,
    args: &ParsedArgs,
) -> Result<(FederatedDataset, ModelFactory), ParseError> {
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let clients: usize = args.get_parsed_or("clients", 0)?; // 0 = default
    let samples: usize = args.get_parsed_or("samples", 0)?;
    let dataset = match kind {
        DatasetKind::Fmnist | DatasetKind::FmnistRelaxed => fmnist_clustered(&FmnistConfig {
            num_clients: if clients == 0 { 15 } else { clients },
            samples_per_client: if samples == 0 { 60 } else { samples },
            relaxation: if kind == DatasetKind::FmnistRelaxed {
                0.18
            } else {
                0.0
            },
            seed,
            ..FmnistConfig::default()
        }),
        DatasetKind::FmnistAuthor => fmnist_by_author(&FmnistConfig {
            num_clients: if clients == 0 { 12 } else { clients },
            samples_per_client: if samples == 0 { 80 } else { samples },
            seed,
            ..FmnistConfig::default()
        }),
        DatasetKind::Poets => poets(&PoetsConfig {
            clients_per_language: if clients == 0 { 6 } else { clients.div_ceil(2) },
            samples_per_client: if samples == 0 { 400 } else { samples },
            seq_len: 12,
            seed,
        }),
        DatasetKind::Cifar => cifar100_like(&Cifar100Config {
            num_clients: if clients == 0 { 30 } else { clients },
            samples_per_client: if samples == 0 { 60 } else { samples },
            seed,
            ..Cifar100Config::default()
        }),
        DatasetKind::FedProxSynthetic => fedprox_synthetic(&FedProxConfig {
            num_clients: if clients == 0 { 30 } else { clients },
            seed,
            ..FedProxConfig::default()
        }),
    };
    let spec = match kind {
        DatasetKind::Poets => ModelSpec::CharRnn {
            embed: 8,
            hidden: 32,
        },
        DatasetKind::FedProxSynthetic => ModelSpec::Linear,
        _ => ModelSpec::Mlp { hidden: vec![64] },
    };
    let backend_word = args.get_or("backend", "tiled").to_string();
    let backend = MatmulBackendKind::parse(&backend_word).ok_or(ParseError::InvalidValue {
        flag: "backend".into(),
        value: backend_word,
    })?;
    let inner = spec.build_factory(dataset.feature_len(), dataset.num_classes());
    let factory: ModelFactory = std::sync::Arc::new(move |rng| {
        let mut model = inner(rng);
        model.set_matmul_backend(backend);
        model
    });
    Ok((dataset, factory))
}

/// Dataset + factory from the common `--dataset`/`--clients`/...
/// flags, shared with the networked subcommands.
pub(crate) fn build_cli_task(
    args: &ParsedArgs,
) -> Result<(FederatedDataset, ModelFactory), Box<dyn Error>> {
    let dataset_word = args.get_or("dataset", "fmnist").to_string();
    let kind = DatasetKind::parse(&dataset_word).ok_or_else(|| {
        Box::new(ParseError::InvalidValue {
            flag: "dataset".into(),
            value: dataset_word,
        }) as Box<dyn Error>
    })?;
    Ok(build_task(kind, args)?)
}

/// [`dag_config`] for sibling modules (the peer session shares the
/// DAG/hyperparameter flags).
pub(crate) fn cli_dag_config(
    args: &ParsedArgs,
    num_clients: usize,
) -> Result<DagConfig, ParseError> {
    dag_config(args, num_clients)
}

/// The CLI flag a core config field is populated from, so validation
/// errors name what the user actually typed.
fn flag_for_field(field: &str) -> &str {
    match field {
        "delay.delay" | "delay.base" | "delay.fast" => "delay",
        "delay.jitter" => "jitter",
        "delay.slow" => "slow-delay",
        "delay.slow_fraction" | "compute.slow_fraction" => "slow-fraction",
        "compute.slowdown" => "slowdown",
        "mean_interarrival" => "interarrival",
        "train_time" => "train-time",
        "total_activations" => "activations",
        "learning_rate" => "lr",
        "clients_per_round" => "clients-per-round",
        "local_epochs" => "epochs",
        "local_batches" => "batches",
        "batch_size" => "batch-size",
        "walk_stop_margin" => "stop-margin",
        "faults.drop" => "drop",
        "faults.duplicate" => "duplicate",
        "faults.reorder" => "reorder",
        "faults.extra_delay" => "extra-delay",
        "faults.delay_boost" => "delay-boost",
        "faults.partition" => "partition-start",
        "faults.crash" => "crash-at",
        // `rounds`, `alpha`, `seed`, ... already match their flags.
        other => other,
    }
}

/// Maps a core validation error onto the CLI's flag-error shape.
fn config_error(err: CoreError) -> ParseError {
    match err {
        CoreError::InvalidField { field, value, .. } => ParseError::InvalidValue {
            flag: flag_for_field(field).to_string(),
            value,
        },
        other => ParseError::InvalidValue {
            flag: "config".to_string(),
            value: other.to_string(),
        },
    }
}

fn dag_config(args: &ParsedArgs, num_clients: usize) -> Result<DagConfig, ParseError> {
    let alpha: f32 = args.get_parsed_or("alpha", 10.0)?;
    let normalization = match args.get_or("normalization", "simple") {
        "dynamic" => Normalization::Dynamic,
        _ => Normalization::Simple,
    };
    let selector = match args.get_or("selector", "accuracy") {
        "random" => TipSelector::Random,
        "cumulative" => TipSelector::CumulativeWeight { alpha },
        _ => TipSelector::Accuracy {
            alpha,
            normalization,
        },
    };
    let stop_margin: f32 = args.get_parsed_or("stop-margin", 0.0)?;
    let config = DagConfig {
        rounds: args.get_parsed_or("rounds", 30)?,
        clients_per_round: args.get_parsed_or("clients-per-round", 6.min(num_clients))?,
        local_epochs: args.get_parsed_or("epochs", 1)?,
        local_batches: args.get_parsed_or("batches", 10)?,
        batch_size: args.get_parsed_or("batch-size", 10)?,
        learning_rate: args.get_parsed_or("lr", 0.05)?,
        tip_selector: selector,
        walk_stop_margin: (stop_margin > 0.0).then_some(stop_margin),
        seed: args.get_parsed_or("seed", 42)?,
        ..DagConfig::default()
    };
    // Range validation lives in core (`DagConfig::validate`), so
    // programmatic users get the same errors as CLI users.
    config.validate().map_err(config_error)?;
    Ok(config)
}

/// Builds the asynchronous-mode configuration from `--delay-model`,
/// `--stale-policy` and friends.
fn async_config(args: &ParsedArgs, num_clients: usize) -> Result<AsyncConfig, ParseError> {
    let base: f64 = args.get_parsed_or("delay", 2.0)?;
    let jitter: f64 = args.get_parsed_or("jitter", 0.0)?;
    let slow_fraction: f64 = args.get_parsed_or("slow-fraction", 0.3)?;
    let slow_delay: f64 = args.get_parsed_or("slow-delay", 8.0)?;
    let model_word = args.get_or("delay-model", "constant");
    let delay = match model_word {
        "constant" => DelayModel::Constant { delay: base },
        "jitter" => DelayModel::UniformJitter { base, jitter },
        "cohorts" => DelayModel::Cohorts {
            slow_fraction,
            fast: base,
            slow: slow_delay,
            jitter,
        },
        other => {
            return Err(ParseError::InvalidValue {
                flag: "delay-model".into(),
                value: other.into(),
            })
        }
    };
    // Flags that the chosen delay model happens not to use are still
    // range-checked, so a typo like `--slow-fraction 1.5` never passes
    // silently: validate a cohorts model built from all raw values.
    DelayModel::Cohorts {
        slow_fraction,
        fast: base,
        slow: slow_delay,
        jitter,
    }
    .validate()
    .map_err(config_error)?;
    let slowdown: f64 = args.get_parsed_or("slowdown", 1.0)?;
    let compute = if slowdown != 1.0 {
        if model_word == "cohorts" {
            // One shared straggler cohort: slow links and slow compute
            // hit the same clients.
            ComputeProfile::MatchNetworkCohort { slowdown }
        } else {
            ComputeProfile::TwoSpeed {
                slow_fraction,
                slowdown,
            }
        }
    } else {
        ComputeProfile::Uniform
    };
    let stale_policy = match args.get_or("stale-policy", "publish") {
        "publish" => StaleTipPolicy::PublishAnyway,
        "reselect" => StaleTipPolicy::Reselect,
        "discard" => StaleTipPolicy::Discard,
        other => {
            return Err(ParseError::InvalidValue {
                flag: "stale-policy".into(),
                value: other.into(),
            })
        }
    };
    let config = AsyncConfig {
        dag: dag_config(args, num_clients)?,
        total_activations: args.get_parsed_or("activations", 200)?,
        mean_interarrival: args.get_parsed_or("interarrival", 1.0)?,
        delay,
        compute,
        train_time: args.get_parsed_or("train-time", 0.0)?,
        stale_policy,
        gossip_fanout: args.get_parsed_or("fanout", 0)?,
        workers: args.get_parsed_or("workers", 1)?,
    };
    // Core validation covers the rest (delays, slowdown, inter-arrival,
    // training time and the embedded DAG config).
    config.validate().map_err(config_error)?;
    Ok(config)
}

/// Optional float flag: `None` when absent, an error when unparsable.
fn opt_f64(args: &ParsedArgs, flag: &str) -> Result<Option<f64>, ParseError> {
    args.get(flag)
        .map(|raw| {
            raw.parse().map_err(|_| ParseError::InvalidValue {
                flag: flag.to_string(),
                value: raw.to_string(),
            })
        })
        .transpose()
}

/// Builds the fault-injection plan for `dagfl async` from `--drop`,
/// `--partition-start` and friends. All defaults are zero, so a command
/// line without fault flags yields an inert plan and the unfaulted
/// loopback transport.
fn fault_plan(args: &ParsedArgs) -> Result<FaultPlan, ParseError> {
    let mut plan = FaultPlan {
        drop: args.get_parsed_or("drop", 0.0)?,
        duplicate: args.get_parsed_or("duplicate", 0.0)?,
        reorder: args.get_parsed_or("reorder", 0.0)?,
        extra_delay: args.get_parsed_or("extra-delay", 0.0)?,
        delay_boost: args.get_parsed_or("delay-boost", 1.0)?,
        ..FaultPlan::default()
    };
    if let (Some(start), Some(heal)) = (
        opt_f64(args, "partition-start")?,
        opt_f64(args, "partition-heal")?,
    ) {
        plan.partitions.push(PartitionWindow {
            start,
            heal,
            split: args.get_parsed_or("partition-split", 1)?,
        });
    }
    if let Some(at) = opt_f64(args, "crash-at")? {
        plan.crashes.push(CrashWindow {
            peer: args.get_parsed_or("crash-peer", 0)?,
            at,
            restart: opt_f64(args, "crash-restart")?.unwrap_or(f64::INFINITY),
        });
    }
    plan.validate().map_err(config_error)?;
    Ok(plan)
}

fn fed_config(args: &ParsedArgs, num_clients: usize, mu: f32) -> Result<FedConfig, ParseError> {
    Ok(FedConfig {
        rounds: args.get_parsed_or("rounds", 30)?,
        clients_per_round: args.get_parsed_or("clients-per-round", 6.min(num_clients))?,
        local_epochs: args.get_parsed_or("epochs", 1)?,
        local_batches: args.get_parsed_or("batches", 10)?,
        batch_size: args.get_parsed_or("batch-size", 10)?,
        learning_rate: args.get_parsed_or("lr", 0.05)?,
        proximal_mu: mu,
        straggler_fraction: args.get_parsed_or("stragglers", 0.0)?,
        drop_stragglers: mu == 0.0,
        seed: args.get_parsed_or("seed", 42)?,
        ..FedConfig::default()
    })
}

/// Runs the parsed command, printing a per-round CSV to stdout.
///
/// # Errors
///
/// Returns an error for invalid arguments or failed training.
pub fn run_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    match args.command() {
        Command::Help => {
            println!("{USAGE}");
            return Ok(());
        }
        Command::Run => return run_scenario(args),
        Command::Analyze => return analyze_command(args),
        Command::Sweep => return sweep_command(args),
        Command::Scenarios => return scenarios_command(args),
        Command::Perf => return crate::perf::perf_command(args),
        Command::Peer => return crate::net::peer_command(args),
        Command::Tracker => return crate::net::tracker_command(args),
        _ => {}
    }
    let (dataset, factory) = build_cli_task(args)?;
    let n = dataset.num_clients();
    eprintln!(
        "# dataset={} clients={} classes={} base_pureness={:.3}",
        dataset.name(),
        n,
        dataset.num_classes(),
        dataset.base_pureness()
    );
    match args.command() {
        Command::Dag => {
            let config = dag_config(args, n)?;
            let mut sim = Simulation::new(config, dataset, factory);
            println!("round,published,mean_accuracy,mean_loss,tangle_size");
            for _ in 0..config.rounds {
                let m = sim.run_round()?;
                println!(
                    "{},{},{:.4},{:.4},{}",
                    m.round + 1,
                    m.published,
                    m.mean_accuracy(),
                    m.mean_loss(),
                    sim.tangle().len()
                );
            }
            let spec = sim.specialization_metrics();
            eprintln!(
                "# pureness={:.3} modularity={:.3} partitions={} misclassification={:.3}",
                spec.approval_pureness, spec.modularity, spec.partitions, spec.misclassification
            );
        }
        Command::FedAvg | Command::FedProx => {
            let mu = if args.command() == Command::FedProx {
                args.get_parsed_or("mu", 0.1)?
            } else {
                0.0
            };
            let config = fed_config(args, n, mu)?;
            let mut server = FederatedServer::new(config, dataset, factory);
            println!("round,mean_accuracy,mean_loss,stragglers");
            for _ in 0..config.rounds {
                let m = server.run_round()?;
                println!(
                    "{},{:.4},{:.4},{}",
                    m.round + 1,
                    m.mean_accuracy(),
                    m.mean_loss(),
                    m.stragglers
                );
            }
        }
        Command::Local => {
            let rounds: usize = args.get_parsed_or("rounds", 30)?;
            let mut local = LocalOnly::new(
                dataset,
                factory,
                args.get_parsed_or("lr", 0.05)?,
                args.get_parsed_or("batches", 10)?,
                args.get_parsed_or("batch-size", 10)?,
                args.get_parsed_or("seed", 42)?,
            );
            println!("round,mean_accuracy");
            for round in 0..rounds {
                local.run_round()?;
                println!("{},{:.4}", round + 1, local.mean_accuracy()?);
            }
        }
        Command::Async => {
            let config = async_config(args, n)?;
            let plan = fault_plan(args)?;
            let mut sim = AsyncSimulation::try_new_with_faults(config, dataset, factory, plan)?;
            println!("activation,started,completed,client,accuracy,published,stale_parents");
            for i in 0..config.total_activations {
                let r = sim.step()?;
                println!(
                    "{},{:.2},{:.2},{},{:.4},{},{}",
                    i + 1,
                    r.started,
                    r.completed,
                    r.client,
                    r.accuracy,
                    r.published,
                    r.stale_parents
                );
            }
            let m = sim.metrics();
            eprintln!(
                "# activations={} elapsed={:.2} rate={:.3}/t publish_fraction={:.3}",
                m.activations,
                m.elapsed,
                m.activation_rate(),
                m.publish_fraction()
            );
            eprintln!(
                "# publish_latency mean={:.3} max={:.3} stale_fraction={:.3} \
                 staleness=[{},{},{}] discarded={} reselected={}",
                m.mean_publish_latency,
                m.max_publish_latency,
                m.stale_fraction(),
                m.staleness_histogram[0],
                m.staleness_histogram[1],
                m.staleness_histogram[2],
                m.discarded_stale,
                m.reselections
            );
            eprintln!(
                "# confirmation_depth={:.2} transactions={} tips={} pending={} pureness={:.3}",
                m.mean_confirmation_depth,
                m.transactions,
                m.tips,
                sim.pending_deliveries(),
                sim.approval_pureness()
            );
            let stats = sim.transport_stats();
            if stats.has_faults() {
                eprintln!(
                    "# faults delivered={} dropped={} duplicated={}",
                    stats.delivered, stats.dropped, stats.duplicated
                );
            }
        }
        Command::Help
        | Command::Run
        | Command::Analyze
        | Command::Sweep
        | Command::Scenarios
        | Command::Perf
        | Command::Peer
        | Command::Tracker => {
            unreachable!("handled above")
        }
    }
    Ok(())
}

/// The experiment scale a command runs at: the `--full` flag wins, the
/// `DAGFL_FULL` environment variable is the fallback, so paper-scale
/// runs are reproducible from the command line alone.
fn requested_scale(args: &ParsedArgs) -> Scale {
    if args.flag("full") {
        Scale::Full
    } else {
        Scale::from_env()
    }
}

/// `dagfl run --scenario <file>` / `dagfl run --preset <name>`: resolve,
/// validate and execute one declarative scenario, printing the report.
fn run_scenario(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let mut scenario = match (args.get("scenario"), args.get("preset")) {
        (Some(path), None) => Scenario::load(path)?,
        (None, Some(name)) => Scenario::preset_at(name, requested_scale(args))?,
        _ => {
            return Err(
                "`dagfl run` needs exactly one of --scenario <file> or --preset <name>".into(),
            )
        }
    };
    // Worker-count override for async scenarios: results are
    // byte-identical at any count, so CI runs the same scenario at
    // --workers 1 and --workers N and diffs the digests.
    if let Some(raw) = args.get("workers") {
        let workers: usize = args.get_parsed_or("workers", 1)?;
        if workers == 0 {
            return Err(format!("`--workers {raw}` is out of range (need >= 1)").into());
        }
        match &mut scenario.execution {
            dagfl_scenario::ExecutionSpec::Async { config, .. } => config.workers = workers,
            dagfl_scenario::ExecutionSpec::Rounds(_) => {
                return Err("`--workers` only applies to async-mode scenarios".into())
            }
        }
    }
    let runner = ScenarioRunner::new(scenario)?;
    eprintln!(
        "# scenario={} mode={}",
        runner.scenario().name,
        runner.scenario().execution.mode()
    );
    let report = runner.run()?;
    print!("{}", report.summary());
    // Opt-in so existing golden outputs stay byte-identical; CI's
    // scale-smoke job diffs this line between worker counts.
    if args.flag("digest") {
        println!("tangle digest {:#018x}", report.tangle_digest);
    }
    Ok(())
}

/// `dagfl analyze --scenario <file>` / `--preset <name>`: run the
/// scenario with analytics force-enabled (flags override the scenario's
/// own `[analysis]` section) and print the cluster assignment table
/// plus the quality metrics.
fn analyze_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let mut scenario = match (args.get("scenario"), args.get("preset")) {
        (Some(path), None) => Scenario::load(path)?,
        (None, Some(name)) => Scenario::preset_at(name, requested_scale(args))?,
        _ => {
            return Err(
                "`dagfl analyze` needs exactly one of --scenario <file> or --preset <name>".into(),
            )
        }
    };
    // Start from the scenario's own [analysis] section (or the
    // defaults), then let flags override it, mirroring the file schema.
    let mut spec = scenario.analysis.take().unwrap_or_default();
    spec.enabled = true;
    let k: Option<usize> = match args.get("k") {
        Some(raw) => Some(raw.parse().map_err(|_| ParseError::InvalidValue {
            flag: "k".into(),
            value: raw.to_string(),
        })?),
        None => None,
    };
    if k.is_some() && (args.get("k-min").is_some() || args.get("k-max").is_some()) {
        return Err(
            "`--k` fixes the cluster count; it cannot be combined with --k-min/--k-max".into(),
        );
    }
    if let Some(k) = k {
        spec.k = Some(k);
    } else if args.get("k-min").is_some() || args.get("k-max").is_some() {
        spec.k = None;
        spec.k_min = args.get_parsed_or("k-min", spec.k_min)?;
        spec.k_max = args.get_parsed_or("k-max", spec.k_max)?;
    }
    spec.cadence = args.get_parsed_or("cadence", spec.cadence)?;
    if let Some(word) = args.get("source") {
        spec.source = AnalysisSource::parse(word).ok_or_else(|| {
            format!("invalid --source `{word}`: expected parameters, approvals or both")
        })?;
    }
    scenario = scenario.with_analysis(spec);
    let runner = ScenarioRunner::new(scenario)?;
    eprintln!(
        "# scenario={} mode={}",
        runner.scenario().name,
        runner.scenario().execution.mode()
    );
    let report = runner.run()?;
    let snapshot = report
        .analysis
        .as_ref()
        .expect("analytics were force-enabled");
    println!(
        "analysis of {} after {} rounds:",
        report.scenario, snapshot.round
    );
    println!();
    // The assignment table: one row per client, ground truth next to
    // the unsupervised views. Rebuilding the dataset is deterministic
    // and cheap next to the training run that just finished.
    let truth = runner.scenario().dataset.build().cluster_labels();
    println!(
        "{:>6}  {:>5}  {:>6}  {:>5}",
        "client", "truth", "params", "graph"
    );
    for (idx, label) in truth.iter().enumerate() {
        let params_cell = snapshot
            .parameters
            .as_ref()
            .map_or_else(|| "-".into(), |p| p.assignments[idx].to_string());
        let graph_cell = snapshot
            .graph
            .as_ref()
            .map_or_else(|| "-".into(), |g| g.communities[idx].to_string());
        println!("{idx:>6}  {label:>5}  {params_cell:>6}  {graph_cell:>5}");
    }
    println!();
    print!("{}", report.summary());
    Ok(())
}

/// Parses the ad-hoc `--axes` value: `;`-separated `field=v1,v2,...`
/// entries (`"alpha=0.1,1,10;replicate=0..3"`). Ranges expand like
/// sweep files.
fn parse_axes_flag(spec: &str) -> Result<Vec<SweepAxis>, Box<dyn Error>> {
    let mut axes = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (field, values) = entry
            .split_once('=')
            .ok_or_else(|| format!("axis `{entry}` is not of the form field=v1,v2,..."))?;
        let values = values.trim();
        let tokens: Vec<String> =
            match values.split_once("..") {
                Some((start, end)) => {
                    let start: u64 = start.trim().parse().map_err(|_| {
                        format!("axis `{field}`: `{values}` is not an integer range")
                    })?;
                    let end: u64 = end.trim().parse().map_err(|_| {
                        format!("axis `{field}`: `{values}` is not an integer range")
                    })?;
                    // Shared with sweep files: empty and oversized
                    // ranges are rejected before anything is allocated.
                    SweepAxis::range_tokens(field.trim(), start, end)?
                }
                None => values
                    .split(',')
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect(),
            };
        axes.push(SweepAxis {
            field: field.trim().to_string(),
            values: tokens,
        });
    }
    if axes.is_empty() {
        return Err("--axes needs at least one `field=values` entry".into());
    }
    Ok(axes)
}

/// `dagfl sweep <file|sweep-preset>` / `dagfl sweep --preset-base <name>
/// --axes <spec>`: expand a parameter grid, run the cells on `--jobs`
/// workers (or list them with `--dry-run`), and print the aggregate
/// report.
fn sweep_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let mut spec = match (args.positional(), args.get("preset-base")) {
        (Some(source), None) => {
            let looks_like_path = source.ends_with(".toml") || source.contains(['/', '\\']);
            if looks_like_path || Path::new(source).exists() {
                SweepSpec::load(source)?
            } else {
                // A bare word: try the sweep preset registry.
                SweepSpec::preset(source)?
            }
        }
        (None, Some(base)) => {
            let axes_spec = args
                .get("axes")
                .ok_or("`--preset-base` needs `--axes \"field=v1,v2;...\"`")?;
            let mut spec = SweepSpec::over_preset(format!("sweep-{base}"), base);
            spec.axes = parse_axes_flag(axes_spec)?;
            spec
        }
        _ => {
            return Err(
                "`dagfl sweep` needs a sweep file (or sweep preset name), or --preset-base \
                 <name> with --axes"
                    .into(),
            )
        }
    };
    if let Some(csv) = args.get("csv") {
        spec.comparison_csv = Some(csv.to_string());
    }
    let scale = requested_scale(args);
    let runner = SweepRunner::at_scale(spec, scale)?;
    let cells = runner.cells();
    if args.flag("dry-run") {
        println!(
            "sweep {} expands to {} cells:",
            runner.spec().name,
            cells.len()
        );
        for cell in cells {
            println!("  {:>3}  {}", cell.index, cell.id);
        }
        return Ok(());
    }
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs: usize = args.get_parsed_or("jobs", default_jobs)?.max(1);
    eprintln!(
        "# sweep={} cells={} jobs={}",
        runner.spec().name,
        cells.len(),
        jobs.min(cells.len())
    );
    let report = runner.run(jobs)?;
    print!("{}", report.summary());
    Ok(())
}

/// `dagfl scenarios`: list the scenario and sweep preset registries;
/// `--check <dir>` validates every `*.toml` scenario *and* sweep file in
/// a directory (the CI smoke job runs this over `scenarios/`);
/// `--dump <dir>` writes every preset out as a file.
fn scenarios_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    if let Some(dir) = args.get("check") {
        return check_scenario_dir(Path::new(dir));
    }
    if let Some(dir) = args.get("dump") {
        return dump_presets(Path::new(dir));
    }
    println!(
        "available presets (quick scale; pass --full or set DAGFL_FULL=1 for the paper's scale):"
    );
    for (name, description) in Scenario::preset_names() {
        println!("  {name:<24} {description}");
    }
    println!("\navailable sweeps (parameter grids; `dagfl sweep <name>`):");
    for (name, description) in SweepSpec::preset_names() {
        println!("  {name:<24} {description}");
    }
    println!("\nrun one with `dagfl run --preset <name>` (add --full for paper scale);");
    println!("check scenario and sweep files with `dagfl scenarios --check <dir>`.");
    Ok(())
}

fn check_scenario_dir(dir: &Path) -> Result<(), Box<dyn Error>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .toml scenario files found in {}", dir.display()).into());
    }
    let mut failures = Vec::new();
    for path in &paths {
        let outcome = match std::fs::read_to_string(path) {
            // Sweep files go through `SweepSpec::load`, not `from_toml`,
            // so relative file bases anchor to the sweep file's
            // directory exactly as `dagfl sweep <file>` resolves them.
            Ok(text) if dagfl_scenario::is_sweep_toml(&text) => SweepSpec::load(path)
                .and_then(|spec| spec.validate().map(|()| spec))
                .map(|spec| format!("{} (sweep)", spec.name)),
            Ok(text) => Scenario::from_toml(&text)
                .and_then(|s| s.validate().map(|()| s))
                .map(|s| s.name),
            Err(e) => Err(dagfl_scenario::ScenarioError::Io(format!(
                "reading {}: {e}",
                path.display()
            ))),
        };
        match outcome {
            Ok(name) => println!("ok   {} ({name})", path.display()),
            Err(e) => {
                println!("FAIL {}: {e}", path.display());
                failures.push(path.display().to_string());
            }
        }
    }
    if failures.is_empty() {
        println!("{} scenario files valid", paths.len());
        Ok(())
    } else {
        Err(format!("invalid scenario files: {}", failures.join(", ")).into())
    }
}

fn dump_presets(dir: &Path) -> Result<(), Box<dyn Error>> {
    // Pin the quick scale so checked-in files don't depend on the
    // caller's environment.
    for (name, _) in Scenario::preset_names() {
        let scenario = Scenario::preset_at(name, Scale::Quick)?;
        let path = dir.join(format!("{name}.toml"));
        scenario.save(&path)?;
        println!("wrote {}", path.display());
    }
    for (name, _) in SweepSpec::preset_names() {
        let spec = SweepSpec::preset(name)?;
        let path = dir.join(format!("{name}.toml"));
        spec.save(&path)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kinds_parse() {
        assert_eq!(DatasetKind::parse("fmnist"), Some(DatasetKind::Fmnist));
        assert_eq!(DatasetKind::parse("poets"), Some(DatasetKind::Poets));
        assert_eq!(
            DatasetKind::parse("fedprox-synthetic"),
            Some(DatasetKind::FedProxSynthetic)
        );
        assert_eq!(DatasetKind::parse("unknown"), None);
    }

    #[test]
    fn build_task_produces_matching_model() {
        let args = ParsedArgs::parse(["dag", "--clients", "6", "--samples", "30"]).unwrap();
        let (dataset, factory) = build_task(DatasetKind::Fmnist, &args).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let model = factory(&mut rng);
        // The model accepts the dataset's feature width.
        let eval = model
            .evaluate(dataset.clients()[0].test_x(), dataset.clients()[0].test_y())
            .unwrap();
        assert!(eval.total > 0);
    }

    #[test]
    fn dag_config_respects_flags() {
        let args = ParsedArgs::parse([
            "dag",
            "--rounds",
            "7",
            "--alpha",
            "3",
            "--normalization",
            "dynamic",
            "--stop-margin",
            "0.2",
        ])
        .unwrap();
        let cfg = dag_config(&args, 20).unwrap();
        assert_eq!(cfg.rounds, 7);
        assert_eq!(cfg.walk_stop_margin, Some(0.2));
        match cfg.tip_selector {
            TipSelector::Accuracy {
                alpha,
                normalization,
            } => {
                assert_eq!(alpha, 3.0);
                assert_eq!(normalization, Normalization::Dynamic);
            }
            other => panic!("unexpected selector {other:?}"),
        }
    }

    #[test]
    fn selector_flag_switches_strategy() {
        let args = ParsedArgs::parse(["dag", "--selector", "random"]).unwrap();
        assert_eq!(
            dag_config(&args, 10).unwrap().tip_selector,
            TipSelector::Random
        );
        let args = ParsedArgs::parse(["dag", "--selector", "cumulative", "--alpha", "2"]).unwrap();
        assert_eq!(
            dag_config(&args, 10).unwrap().tip_selector,
            TipSelector::CumulativeWeight { alpha: 2.0 }
        );
    }

    #[test]
    fn fed_config_wires_stragglers() {
        let args = ParsedArgs::parse(["fedprox", "--stragglers", "0.5"]).unwrap();
        let cfg = fed_config(&args, 10, 0.1).unwrap();
        assert_eq!(cfg.straggler_fraction, 0.5);
        assert!(!cfg.drop_stragglers, "fedprox keeps stragglers");
        let cfg = fed_config(&args, 10, 0.0).unwrap();
        assert!(cfg.drop_stragglers, "fedavg drops stragglers");
    }

    #[test]
    fn run_command_help_succeeds() {
        let args = ParsedArgs::parse(["help"]).unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn run_command_tiny_dag_succeeds() {
        let args = ParsedArgs::parse([
            "dag",
            "--clients",
            "4",
            "--samples",
            "30",
            "--rounds",
            "2",
            "--clients-per-round",
            "2",
            "--batches",
            "2",
        ])
        .unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn run_command_rejects_bad_dataset() {
        let args = ParsedArgs::parse(["dag", "--dataset", "imagenet"]).unwrap();
        assert!(run_command(&args).is_err());
    }

    #[test]
    fn run_command_tiny_local_succeeds() {
        let args = ParsedArgs::parse([
            "local",
            "--clients",
            "3",
            "--samples",
            "30",
            "--rounds",
            "2",
            "--batches",
            "2",
        ])
        .unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn run_command_tiny_async_succeeds() {
        let args = ParsedArgs::parse([
            "async",
            "--clients",
            "4",
            "--samples",
            "30",
            "--activations",
            "5",
            "--batches",
            "2",
        ])
        .unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn validation_errors_name_the_flag_the_user_typed() {
        for (flags, flag_name) in [
            (vec!["async", "--slow-fraction", "1.5"], "slow-fraction"),
            (vec!["async", "--delay", "-1"], "delay"),
            (vec!["async", "--interarrival", "0"], "interarrival"),
            (vec!["async", "--train-time", "-2"], "train-time"),
            (vec!["async", "--slowdown", "0.5"], "slowdown"),
            (vec!["dag", "--lr", "-1"], "lr"),
            (vec!["dag", "--batches", "0"], "batches"),
        ] {
            let args = ParsedArgs::parse(flags.clone()).unwrap();
            let err = if flags[0] == "async" {
                async_config(&args, 10).unwrap_err()
            } else {
                dag_config(&args, 10).unwrap_err()
            };
            match err {
                ParseError::InvalidValue { ref flag, .. } => {
                    assert_eq!(flag, flag_name, "{flags:?}")
                }
                other => panic!("{flags:?}: unexpected error {other:?}"),
            }
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_preset_smoke_succeeds_end_to_end() {
        let args = ParsedArgs::parse(["run", "--preset", "smoke"]).unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn run_rejects_unknown_preset_and_missing_flags() {
        let args = ParsedArgs::parse(["run", "--preset", "fig99"]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("fig99"));
        let args = ParsedArgs::parse(["run"]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("--scenario"));
        let args = ParsedArgs::parse(["run", "--scenario", "a", "--preset", "b"]).unwrap();
        assert!(run_command(&args).is_err());
    }

    #[test]
    fn run_scenario_file_round_trips_through_the_cli() {
        let dir = temp_dir("dagfl_cli_run_scenario_test");
        let path = dir.join("smoke.toml");
        Scenario::preset_at("smoke", Scale::Quick)
            .unwrap()
            .save(&path)
            .unwrap();
        let args = ParsedArgs::parse(["run", "--scenario", path.to_str().unwrap()]).unwrap();
        run_command(&args).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_rejects_missing_and_malformed_scenario_files() {
        let args = ParsedArgs::parse(["run", "--scenario", "/nonexistent/x.toml"]).unwrap();
        assert!(run_command(&args).is_err());
        let dir = temp_dir("dagfl_cli_bad_scenario_test");
        let path = dir.join("bad.toml");
        std::fs::write(&path, "name = \"x\"\n[dataset]\nkind = \"imagenet\"\n").unwrap();
        let args = ParsedArgs::parse(["run", "--scenario", path.to_str().unwrap()]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("imagenet"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenarios_lists_presets() {
        let args = ParsedArgs::parse(["scenarios"]).unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn full_flag_resolves_paper_scale() {
        let args = ParsedArgs::parse(["run", "--preset", "smoke", "--full"]).unwrap();
        assert_eq!(requested_scale(&args), Scale::Full);
        // The smoke preset is scale-independent, so this stays cheap.
        run_command(&args).unwrap();
        let args = ParsedArgs::parse(["run", "--preset", "smoke"]).unwrap();
        assert_eq!(requested_scale(&args), Scale::from_env());
    }

    #[test]
    fn parse_axes_flag_handles_lists_ranges_and_errors() {
        let axes = parse_axes_flag("alpha=0.1,1,10;replicate=0..3").unwrap();
        assert_eq!(axes.len(), 2);
        assert_eq!(axes[0].field, "alpha");
        assert_eq!(axes[0].values, ["0.1", "1", "10"]);
        assert_eq!(axes[1].values, ["0", "1", "2"]);
        assert!(parse_axes_flag("").is_err());
        assert!(parse_axes_flag("alpha").is_err());
        assert!(parse_axes_flag("seed=5..5").is_err());
        assert!(parse_axes_flag("seed=a..b").is_err());
        // Oversized ranges are refused before allocation, like files.
        assert!(parse_axes_flag("replicate=0..9999999999").is_err());
    }

    #[test]
    fn sweep_preset_dry_run_lists_cells() {
        let args = ParsedArgs::parse(["sweep", "sweep-smoke", "--dry-run"]).unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn sweep_ad_hoc_grid_runs_end_to_end() {
        let args = ParsedArgs::parse([
            "sweep",
            "--preset-base",
            "smoke",
            "--axes",
            "seed=42,43",
            "--jobs",
            "2",
        ])
        .unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn sweep_file_round_trips_through_the_cli() {
        let dir = temp_dir("dagfl_cli_sweep_file_test");
        let path = dir.join("sweep-smoke.toml");
        dagfl_scenario::SweepSpec::preset("sweep-smoke")
            .unwrap()
            .save(&path)
            .unwrap();
        let args = ParsedArgs::parse(["sweep", path.to_str().unwrap(), "--dry-run"]).unwrap();
        run_command(&args).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_rejects_bad_invocations() {
        // Neither a file nor a preset base.
        let args = ParsedArgs::parse(["sweep"]).unwrap();
        assert!(run_command(&args).is_err());
        // An unknown sweep preset word.
        let args = ParsedArgs::parse(["sweep", "sweep-nothing"]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("sweep-nothing"));
        // A missing sweep file.
        let args = ParsedArgs::parse(["sweep", "/nonexistent/sweep.toml"]).unwrap();
        assert!(run_command(&args).is_err());
        // --preset-base without --axes.
        let args = ParsedArgs::parse(["sweep", "--preset-base", "smoke"]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("--axes"));
        // An axis rejected by the spec, naming the field path.
        let args = ParsedArgs::parse([
            "sweep",
            "--preset-base",
            "smoke",
            "--axes",
            "execution.delay=1.0",
            "--dry-run",
        ])
        .unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("execution.delay"));
    }

    #[test]
    fn scenarios_dump_then_check_round_trips() {
        let dir = temp_dir("dagfl_cli_scenarios_check_test");
        let args = ParsedArgs::parse(["scenarios", "--dump", dir.to_str().unwrap()]).unwrap();
        run_command(&args).unwrap();
        let args = ParsedArgs::parse(["scenarios", "--check", dir.to_str().unwrap()]).unwrap();
        run_command(&args).unwrap();
        // One broken file fails the whole check.
        std::fs::write(dir.join("broken.toml"), "not a scenario").unwrap();
        let args = ParsedArgs::parse(["scenarios", "--check", dir.to_str().unwrap()]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("broken"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenarios_check_rejects_empty_or_missing_dirs() {
        let dir = temp_dir("dagfl_cli_scenarios_empty_test");
        let args = ParsedArgs::parse(["scenarios", "--check", dir.to_str().unwrap()]).unwrap();
        assert!(run_command(&args)
            .unwrap_err()
            .to_string()
            .contains("no .toml"));
        let args = ParsedArgs::parse(["scenarios", "--check", "/nonexistent-dir"]).unwrap();
        assert!(run_command(&args).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_config_builds_cohort_delay_and_policy() {
        let args = ParsedArgs::parse([
            "async",
            "--delay-model",
            "cohorts",
            "--delay",
            "1.5",
            "--slow-delay",
            "12",
            "--slow-fraction",
            "0.4",
            "--jitter",
            "0.5",
            "--slowdown",
            "4",
            "--train-time",
            "0.8",
            "--stale-policy",
            "reselect",
        ])
        .unwrap();
        let cfg = async_config(&args, 10).unwrap();
        assert_eq!(
            cfg.delay,
            DelayModel::Cohorts {
                slow_fraction: 0.4,
                fast: 1.5,
                slow: 12.0,
                jitter: 0.5,
            }
        );
        // Under the cohorts delay model the compute slowdown applies to
        // the same (network-slow) clients.
        assert_eq!(
            cfg.compute,
            ComputeProfile::MatchNetworkCohort { slowdown: 4.0 }
        );
        assert_eq!(cfg.stale_policy, StaleTipPolicy::Reselect);
        assert_eq!(cfg.train_time, 0.8);
    }

    #[test]
    fn async_config_uses_independent_cohort_without_cohort_delays() {
        let args =
            ParsedArgs::parse(["async", "--slowdown", "3", "--slow-fraction", "0.2"]).unwrap();
        let cfg = async_config(&args, 10).unwrap();
        assert_eq!(
            cfg.compute,
            ComputeProfile::TwoSpeed {
                slow_fraction: 0.2,
                slowdown: 3.0,
            }
        );
    }

    #[test]
    fn async_config_rejects_out_of_range_values_instead_of_panicking() {
        for flags in [
            vec!["async", "--delay", "-1"],
            vec!["async", "--jitter", "-0.5"],
            vec!["async", "--slow-fraction", "1.5"],
            vec!["async", "--slowdown", "0.5"],
            vec!["async", "--interarrival", "0"],
            vec!["async", "--train-time", "-2"],
            vec!["async", "--delay-model", "cohorts", "--slow-delay", "-3"],
        ] {
            let args = ParsedArgs::parse(flags.clone()).unwrap();
            assert!(
                matches!(
                    async_config(&args, 10),
                    Err(ParseError::InvalidValue { .. })
                ),
                "expected InvalidValue for {flags:?}"
            );
        }
    }

    #[test]
    fn async_config_defaults_to_constant_delay_uniform_compute() {
        let args = ParsedArgs::parse(["async"]).unwrap();
        let cfg = async_config(&args, 10).unwrap();
        assert_eq!(cfg.delay, DelayModel::Constant { delay: 2.0 });
        assert_eq!(cfg.compute, ComputeProfile::Uniform);
        assert_eq!(cfg.stale_policy, StaleTipPolicy::PublishAnyway);
        assert_eq!(cfg.total_activations, 200);
    }

    #[test]
    fn async_config_rejects_unknown_words() {
        let args = ParsedArgs::parse(["async", "--delay-model", "warp"]).unwrap();
        assert!(matches!(
            async_config(&args, 10).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
        let args = ParsedArgs::parse(["async", "--stale-policy", "retry"]).unwrap();
        assert!(matches!(
            async_config(&args, 10).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }
}
