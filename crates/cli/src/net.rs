//! The networked-mode subcommands: `dagfl peer` and `dagfl tracker`.
//!
//! A networked session is one tracker plus N peers, each started as
//! its own process (typically on localhost for experiments):
//!
//! ```text
//! dagfl tracker --listen 127.0.0.1:7878 --expect 3 &
//! dagfl peer --client 0 --peers 3 --tracker 127.0.0.1:7878 &
//! dagfl peer --client 1 --peers 3 --tracker 127.0.0.1:7878 &
//! dagfl peer --client 2 --peers 3 --tracker 127.0.0.1:7878
//! ```
//!
//! Every peer prints a `digest=` line at exit; equal digests mean the
//! session converged to one transaction set (the CI `network-smoke`
//! job asserts exactly this).

use std::error::Error;
use std::time::Duration;

use dagfl_core::{run_peer, PeerConfig, Tracker};

use crate::args::ParsedArgs;
use crate::dispatch::{build_cli_task, cli_dag_config};

/// `dagfl tracker`: serve peer discovery until `--expect` peers have
/// joined and left (forever without `--expect`).
pub fn tracker_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let listen = args.get_or("listen", "127.0.0.1:7878");
    let expect: usize = args.get_parsed_or("expect", 0)?;
    let mut tracker = Tracker::bind(listen)?;
    eprintln!("# tracker listening on {}", tracker.local_addr()?);
    let summary = tracker.run((expect > 0).then_some(expect))?;
    println!(
        "tracker done: {} joined, {} left",
        summary.joined, summary.left
    );
    Ok(())
}

/// `dagfl peer`: run one networked DAG-FL peer session and print the
/// convergence digest.
pub fn peer_command(args: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let (dataset, factory) = build_cli_task(args)?;
    let client: u32 = args.get_parsed_or("client", 0)?;
    let peers: usize = args.get_parsed_or("peers", 1)?;
    let config = PeerConfig {
        client,
        peers,
        listen: args.get_or("listen", "127.0.0.1:0").to_string(),
        tracker: args.get_or("tracker", "127.0.0.1:7878").to_string(),
        activations: args.get_parsed_or("activations", 4)?,
        interarrival: Duration::from_millis(args.get_parsed_or("interarrival-ms", 50u64)?),
        dag: cli_dag_config(args, dataset.num_clients())?,
        settle: Duration::from_millis(args.get_parsed_or("settle-ms", 300u64)?),
        timeout: Duration::from_secs(args.get_parsed_or("timeout", 120u64)?),
        reconnect: args.flag("reconnect"),
        fanout: args.get_parsed_or("fanout", 0)?,
    };
    eprintln!(
        "# peer client={} peers={} tracker={} dataset={}",
        client,
        peers,
        config.tracker,
        dataset.name()
    );
    let report = run_peer(&config, &dataset, &factory)?;
    println!(
        "peer {} digest={:016x} transactions={} published={} received={} peers_done={} \
         delivered={} dropped={} reconnects={}",
        report.client,
        report.digest,
        report.transactions,
        report.published,
        report.received,
        report.peers_done,
        report.delivered,
        report.dropped,
        report.reconnects
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_with_expect_zero_parses_to_serve_forever() {
        // `(expect > 0).then_some(expect)` is the forever/bounded switch;
        // exercise the arithmetic without binding a socket.
        let args = ParsedArgs::parse(["tracker", "--expect", "0"]).unwrap();
        let expect: usize = args.get_parsed_or("expect", 0).unwrap();
        assert_eq!((expect > 0).then_some(expect), None);
        let args = ParsedArgs::parse(["tracker", "--expect", "3"]).unwrap();
        let expect: usize = args.get_parsed_or("expect", 0).unwrap();
        assert_eq!((expect > 0).then_some(expect), Some(3));
    }

    #[test]
    fn peer_command_rejects_malformed_flags() {
        let args = ParsedArgs::parse(["peer", "--client", "zero"]).unwrap();
        assert!(peer_command(&args).is_err());
        let args = ParsedArgs::parse(["peer", "--interarrival-ms", "-5"]).unwrap();
        assert!(peer_command(&args).is_err());
    }

    #[test]
    fn peer_command_errors_without_a_tracker() {
        // Port 1 is closed: the session must fail fast, not hang.
        let args = ParsedArgs::parse([
            "peer",
            "--clients",
            "3",
            "--samples",
            "30",
            "--tracker",
            "127.0.0.1:1",
        ])
        .unwrap();
        assert!(peer_command(&args).is_err());
    }
}
