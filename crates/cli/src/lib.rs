//! Library backing the `dagfl` command-line tool: argument parsing,
//! dataset/model construction and experiment dispatch.
//!
//! Kept as a library so the parsing and dispatch logic is unit-testable;
//! `src/main.rs` is a thin wrapper.
//!
//! # Usage
//!
//! ```text
//! dagfl run     --preset quickstart [--full]
//! dagfl sweep   scenarios/sweep-fig06-alpha.toml --jobs 4
//! dagfl dag     --dataset fmnist --rounds 30 --clients-per-round 6 --alpha 10
//! dagfl fedavg  --dataset poets  --rounds 20
//! dagfl fedprox --dataset fedprox-synthetic --mu 0.1 --stragglers 0.5
//! dagfl local   --dataset fmnist --rounds 10
//! dagfl async   --dataset fmnist --activations 200 --delay 2.0
//! dagfl tracker --listen 127.0.0.1:7878 --expect 3
//! dagfl peer    --client 0 --peers 3 --tracker 127.0.0.1:7878
//! dagfl help
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod dispatch;
pub mod net;
pub mod perf;

pub use args::{Command, ParseError, ParsedArgs, USAGE};
pub use dispatch::{run_command, DatasetKind};
