//! The `dagfl` command-line tool: run Specializing-DAG and baseline
//! experiments from the shell. See `dagfl help`.

use dagfl_cli::{run_command, ParsedArgs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `dagfl help`");
            std::process::exit(2);
        }
    };
    if let Err(e) = run_command(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
