//! A small, dependency-free `--key value` argument parser.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// The experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Specializing-DAG round simulation.
    Dag,
    /// Centralized federated averaging.
    FedAvg,
    /// FedProx (FedAvg + proximal term).
    FedProx,
    /// Local-only training (no communication).
    Local,
    /// Event-driven asynchronous DAG simulation.
    Async,
    /// Run a declarative scenario (`--scenario <file>` or
    /// `--preset <name>`).
    Run,
    /// Run a scenario's specialization analytics and print the cluster
    /// assignment table (`--scenario <file>` or `--preset <name>`).
    Analyze,
    /// Expand and run a parameter-grid sweep (`dagfl sweep <file>` or
    /// `--preset-base <name> --axes <spec>`).
    Sweep,
    /// List scenario presets, or check/dump scenario files
    /// (`--check <dir>` / `--dump <dir>`).
    Scenarios,
    /// Walk-evaluation performance smoke; writes `BENCH_walk.json`.
    Perf,
    /// Networked DAG-FL peer (gossip over TCP, tracker discovery).
    Peer,
    /// Peer-discovery tracker for the networked mode.
    Tracker,
    /// Print usage.
    Help,
}

impl Command {
    fn parse(word: &str) -> Option<Self> {
        match word {
            "dag" => Some(Command::Dag),
            "fedavg" => Some(Command::FedAvg),
            "fedprox" => Some(Command::FedProx),
            "local" => Some(Command::Local),
            "async" => Some(Command::Async),
            "run" => Some(Command::Run),
            "analyze" => Some(Command::Analyze),
            "sweep" => Some(Command::Sweep),
            "scenarios" => Some(Command::Scenarios),
            "perf" => Some(Command::Perf),
            "peer" => Some(Command::Peer),
            "tracker" => Some(Command::Tracker),
            "help" | "--help" | "-h" => Some(Command::Help),
            _ => None,
        }
    }
}

/// Errors from command-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// The subcommand is not recognised.
    UnknownCommand(String),
    /// A flag is missing its value.
    MissingValue(String),
    /// A flag appeared that does not start with `--`.
    UnexpectedToken(String),
    /// A value could not be parsed as the expected type.
    InvalidValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "missing subcommand (try `dagfl help`)"),
            ParseError::UnknownCommand(c) => write!(f, "unknown subcommand `{c}`"),
            ParseError::MissingValue(flag) => write!(f, "flag `{flag}` is missing its value"),
            ParseError::UnexpectedToken(t) => write!(f, "unexpected token `{t}`"),
            ParseError::InvalidValue { flag, value } => {
                write!(f, "invalid value `{value}` for flag `{flag}`")
            }
        }
    }
}

impl Error for ParseError {}

/// Flags that take no value (their presence means `true`), so
/// `dagfl run --preset smoke --full` parses without a dangling token.
const BOOLEAN_FLAGS: &[&str] = &["full", "dry-run", "reconnect", "digest"];

/// A parsed command line: the subcommand plus `--key value` options and
/// (for `sweep`) one optional positional argument.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    command: Command,
    options: HashMap<String, String>,
    positional: Option<String>,
}

impl ParsedArgs {
    /// Parses the argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for malformed input.
    pub fn parse<I, S>(args: I) -> Result<Self, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut iter = args.into_iter();
        let command_word = iter.next().ok_or(ParseError::MissingCommand)?;
        let command = Command::parse(command_word.as_ref())
            .ok_or_else(|| ParseError::UnknownCommand(command_word.as_ref().to_string()))?;
        let mut options = HashMap::new();
        let mut positional: Option<String> = None;
        let mut pending: Option<String> = None;
        for token in iter {
            let token = token.as_ref();
            match pending.take() {
                Some(flag) => {
                    options.insert(flag, token.to_string());
                }
                None => {
                    if let Some(flag) = token.strip_prefix("--") {
                        if BOOLEAN_FLAGS.contains(&flag) {
                            options.insert(flag.to_string(), "true".to_string());
                        } else {
                            pending = Some(flag.to_string());
                        }
                    } else if command == Command::Sweep && positional.is_none() {
                        // `dagfl sweep <file>` takes the sweep file (or
                        // sweep preset name) as its one positional arg.
                        positional = Some(token.to_string());
                    } else {
                        return Err(ParseError::UnexpectedToken(token.to_string()));
                    }
                }
            }
        }
        if let Some(flag) = pending {
            return Err(ParseError::MissingValue(format!("--{flag}")));
        }
        Ok(Self {
            command,
            options,
            positional,
        })
    }

    /// The subcommand.
    pub fn command(&self) -> Command {
        self.command
    }

    /// Raw string option, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// Whether a valueless boolean flag (`--full`, `--dry-run`) was
    /// given.
    pub fn flag(&self, flag: &str) -> bool {
        self.get(flag).is_some()
    }

    /// The positional argument (`dagfl sweep <file>`), if present.
    pub fn positional(&self) -> Option<&str> {
        self.positional.as_deref()
    }

    /// String option with default.
    pub fn get_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.get(flag).unwrap_or(default)
    }

    /// Typed option with default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidValue`] when present but unparsable.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
    ) -> Result<T, ParseError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ParseError::InvalidValue {
                flag: flag.to_string(),
                value: raw.to_string(),
            }),
        }
    }

    /// The flags provided (sorted, for error reporting).
    pub fn flags(&self) -> Vec<&str> {
        let mut flags: Vec<&str> = self.options.keys().map(String::as_str).collect();
        flags.sort_unstable();
        flags
    }
}

/// The usage text for `dagfl help`.
pub const USAGE: &str = "\
dagfl — DAG-based decentralized federated learning

USAGE:
    dagfl <COMMAND> [--flag value]...

COMMANDS:
    run       run a declarative scenario (--scenario <file> | --preset <name>)
    sweep     expand and run a parameter grid over a base scenario
              (sweep <file|sweep-preset> | --preset-base <name> --axes <spec>)
    analyze   cluster client models and the approval graph of a scenario
              run, print assignments and quality metrics
              (--scenario <file> | --preset <name>)
    scenarios list scenario and sweep presets; --check <dir> validates
              scenario and sweep files, --dump <dir> writes every preset
    dag       Specializing-DAG simulation (the paper's algorithm)
    fedavg    centralized federated averaging baseline
    fedprox   FedProx baseline (use --mu, --stragglers)
    local     local-only training (no communication)
    async     event-driven asynchronous DAG simulation
    perf      walk-evaluation performance smoke (writes BENCH_walk.json)
    peer      networked DAG-FL peer: gossip over TCP, tracker discovery,
              snapshot sync for late joiners
    tracker   peer-discovery tracker for the networked mode
    help      print this message

SCENARIOS:
    A scenario file describes a whole experiment (dataset, model,
    execution mode, attack, output) as TOML; see scenarios/*.toml.
    Presets resolve at quick scale by default; pass --full (or set
    DAGFL_FULL=1) for the paper's scale — the flag wins over the
    environment. `run --digest` also prints the tangle digest, a
    backend- and worker-count-independent hash of the final DAG, and
    `run --workers N` overrides an async scenario's event-loop worker
    count (results are byte-identical at any count).

SWEEP FLAGS:
    <file>              sweep file (scenarios/sweep-*.toml) or sweep preset name
    --preset-base       base scenario preset for an ad-hoc sweep
    --axes              ad-hoc axes, e.g. \"alpha=0.1,1,10;replicate=0..3\"
    --jobs              worker threads                  (available cores)
    --dry-run           list the expanded cells without running
    --csv               comparison CSV name             (spec default)
    --full              resolve preset bases at the paper's scale

ANALYZE FLAGS (mirror the [analysis] scenario section):
    --scenario          scenario file to run and analyse
    --preset            scenario preset to run and analyse
    --k                 fixed cluster count        (auto-k by silhouette)
    --k-min             auto-k sweep lower bound              (2)
    --k-max             auto-k sweep upper bound              (6)
    --cadence           analyse every N rounds     (0 = final round only)
    --source            parameters | approvals | both         (both)
    --full              resolve presets at the paper's scale

COMMON FLAGS (defaults in parentheses):
    --dataset           fmnist | fmnist-relaxed | fmnist-author | poets |
                        cifar | fedprox-synthetic   (fmnist)
    --clients           number of clients           (dataset default)
    --samples           samples per client          (dataset default)
    --rounds            training rounds             (30)
    --clients-per-round active clients per round    (6)
    --batches           local batches per epoch     (10)
    --epochs            local epochs                (1)
    --batch-size        mini-batch size             (10)
    --lr                SGD learning rate           (0.05)
    --seed              master seed                 (42)
    --backend           matmul backend: naive | tiled (tiled)

DAG FLAGS:
    --alpha             walk randomness parameter   (10)
    --normalization     simple | dynamic            (simple)
    --selector          accuracy | random | cumulative (accuracy)
    --stop-margin       accuracy-cliff guard margin (off)

FEDPROX FLAGS:
    --mu                proximal strength           (0.1)
    --stragglers        straggler fraction          (0.0)

PERF FLAGS:
    --transactions      synthetic tangle size                 (500)
    --walks             walks per phase (cold + warm cache)   (20)
    --samples           samples per synthetic client          (240)
    --alpha             walk randomness parameter             (10)
    --clients           async-phase client count, min 3       (64)
    --workers           async-phase training threads          (4)
    --activations       async-phase total activations         (--clients)
    --train-steps       training-phase SGD steps per backend  (60)
    --out               output JSON path   (results/BENCH_walk.json)
    --train-out         training JSON path (results/BENCH_train.json)

ASYNC FLAGS:
    --activations       total client activations              (200)
    --interarrival      mean activation gap of one client     (1.0)
    --delay-model       constant | jitter | cohorts           (constant)
    --delay             base (fast-link) propagation delay    (2.0)
    --jitter            uniform jitter band width             (0.0)
    --slow-fraction     slow-cohort fraction, network+compute (0.3)
    --slow-delay        slow-link base delay (cohorts model)  (8.0)
    --slowdown          compute slowdown of the slow cohort   (1.0 = uniform;
                        with cohorts delays the same clients are network-slow)
    --train-time        logical training duration             (0.0)
    --stale-policy      publish | reselect | discard          (publish)
    --fanout            gossip targets per publish, 0 = all   (0)
    --workers           training threads; batching is decided by event
                        times, so any count is byte-identical (1)

FAULT FLAGS (async only; deterministic per --seed, defaults are inert):
    --drop              per-envelope drop probability         (0.0)
    --duplicate         per-envelope duplication probability  (0.0)
    --reorder           per-envelope reorder probability      (0.0)
    --extra-delay       per-envelope latency-spike probability(0.0)
    --delay-boost       magnitude of delay-based faults       (1.0)
    --partition-start   partition window opens (logical time)
    --partition-heal    partition window heals (logical time)
    --partition-split   peers 0..split vs split..n            (1)
    --crash-at          crash one peer at this logical time
    --crash-peer        which peer crashes                    (0)
    --crash-restart     restart time (omit: stays down)

PEER FLAGS (networked mode; dataset/DAG flags above also apply):
    --client            this peer's client id                 (0)
    --peers             total peers in the session            (1)
    --tracker           tracker address                       (127.0.0.1:7878)
    --listen            gossip listen address, port 0 = any   (127.0.0.1:0)
    --activations       local training activations            (4)
    --interarrival-ms   pause between activations, ms         (50)
    --settle-ms         quiet period before exiting, ms       (300)
    --timeout           session timeout, seconds              (120)
    --reconnect         retry lost connections with backoff   (off)
    --fanout            gossip targets per publish, 0 = all   (0)

TRACKER FLAGS:
    --listen            tracker listen address                (127.0.0.1:7878)
    --expect            exit after this many peers join+leave (serve forever)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let args = ParsedArgs::parse(["dag", "--rounds", "10", "--alpha", "5"]).unwrap();
        assert_eq!(args.command(), Command::Dag);
        assert_eq!(args.get("rounds"), Some("10"));
        assert_eq!(args.get_parsed_or("alpha", 0.0f32).unwrap(), 5.0);
        assert_eq!(args.flags(), vec!["alpha", "rounds"]);
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let args = ParsedArgs::parse(["fedavg"]).unwrap();
        assert_eq!(args.command(), Command::FedAvg);
        assert_eq!(args.get_parsed_or("rounds", 30usize).unwrap(), 30);
        assert_eq!(args.get_or("dataset", "fmnist"), "fmnist");
    }

    #[test]
    fn all_commands_parse() {
        for (word, cmd) in [
            ("dag", Command::Dag),
            ("fedavg", Command::FedAvg),
            ("fedprox", Command::FedProx),
            ("local", Command::Local),
            ("async", Command::Async),
            ("run", Command::Run),
            ("analyze", Command::Analyze),
            ("sweep", Command::Sweep),
            ("scenarios", Command::Scenarios),
            ("perf", Command::Perf),
            ("peer", Command::Peer),
            ("tracker", Command::Tracker),
            ("help", Command::Help),
            ("--help", Command::Help),
        ] {
            assert_eq!(ParsedArgs::parse([word]).unwrap().command(), cmd);
        }
    }

    #[test]
    fn missing_command_errors() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()).unwrap_err(),
            ParseError::MissingCommand
        );
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(
            ParsedArgs::parse(["frobnicate"]).unwrap_err(),
            ParseError::UnknownCommand(_)
        ));
    }

    #[test]
    fn missing_value_errors() {
        assert!(matches!(
            ParsedArgs::parse(["dag", "--rounds"]).unwrap_err(),
            ParseError::MissingValue(_)
        ));
    }

    #[test]
    fn bare_token_errors() {
        assert!(matches!(
            ParsedArgs::parse(["dag", "ten"]).unwrap_err(),
            ParseError::UnexpectedToken(_)
        ));
    }

    #[test]
    fn sweep_takes_one_positional_argument() {
        let args =
            ParsedArgs::parse(["sweep", "scenarios/sweep-smoke.toml", "--jobs", "2"]).unwrap();
        assert_eq!(args.command(), Command::Sweep);
        assert_eq!(args.positional(), Some("scenarios/sweep-smoke.toml"));
        assert_eq!(args.get("jobs"), Some("2"));
        // Only one positional is accepted, and only for `sweep`.
        assert!(matches!(
            ParsedArgs::parse(["sweep", "a.toml", "b.toml"]).unwrap_err(),
            ParseError::UnexpectedToken(_)
        ));
        assert_eq!(ParsedArgs::parse(["run"]).unwrap().positional(), None);
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let args = ParsedArgs::parse(["run", "--preset", "smoke", "--full"]).unwrap();
        assert!(args.flag("full"));
        assert_eq!(args.get("preset"), Some("smoke"));
        let args = ParsedArgs::parse(["sweep", "x.toml", "--dry-run", "--jobs", "4"]).unwrap();
        assert!(args.flag("dry-run"));
        assert_eq!(args.get_parsed_or("jobs", 1usize).unwrap(), 4);
        let args = ParsedArgs::parse(["run", "--preset", "smoke", "--digest"]).unwrap();
        assert!(args.flag("digest"));
        assert!(!ParsedArgs::parse(["run"]).unwrap().flag("full"));
    }

    #[test]
    fn invalid_typed_value_errors() {
        let args = ParsedArgs::parse(["dag", "--rounds", "many"]).unwrap();
        assert!(matches!(
            args.get_parsed_or("rounds", 1usize).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn usage_mentions_every_command() {
        for cmd in [
            "dag",
            "fedavg",
            "fedprox",
            "local",
            "async",
            "run",
            "analyze",
            "sweep",
            "scenarios",
            "perf",
            "peer",
            "tracker",
        ] {
            assert!(USAGE.contains(cmd), "usage missing {cmd}");
        }
    }
}
