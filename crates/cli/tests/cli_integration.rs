//! Integration tests of the CLI entry points: parsing and dispatch must
//! handle help and malformed invocations gracefully (no panics).

use dagfl_cli::{run_command, Command, ParseError, ParsedArgs};

#[test]
fn help_flag_parses_and_runs() {
    for invocation in [vec!["--help"], vec!["-h"], vec!["help"]] {
        let args = ParsedArgs::parse(invocation.clone()).expect("help parses");
        assert_eq!(args.command(), Command::Help);
        run_command(&args).unwrap_or_else(|e| panic!("help failed for {invocation:?}: {e}"));
    }
}

#[test]
fn unknown_subcommand_is_a_parse_error_not_a_panic() {
    let err = ParsedArgs::parse(["frobnicate"]).expect_err("unknown subcommand must fail");
    assert_eq!(err, ParseError::UnknownCommand("frobnicate".into()));
    // The error formats into a user-facing message naming the culprit.
    assert!(err.to_string().contains("frobnicate"));
}

#[test]
fn missing_subcommand_is_reported() {
    let err = ParsedArgs::parse(Vec::<String>::new()).expect_err("empty args must fail");
    assert_eq!(err, ParseError::MissingCommand);
}

#[test]
fn unknown_dataset_is_an_error_not_a_panic() {
    let args = ParsedArgs::parse(["dag", "--dataset", "no-such-dataset"]).expect("parses");
    let err = run_command(&args).expect_err("unknown dataset must fail");
    assert!(err.to_string().contains("no-such-dataset"));
}

#[test]
fn malformed_flag_value_is_an_error_not_a_panic() {
    let args = ParsedArgs::parse(["dag", "--rounds", "many"]).expect("parses");
    let err = run_command(&args).expect_err("non-numeric rounds must fail");
    assert!(err.to_string().contains("many"));
}

#[test]
fn help_documents_the_async_mode() {
    use dagfl_cli::USAGE;
    for needle in [
        "async",
        "--delay-model",
        "--stale-policy",
        "--train-time",
        "--slowdown",
    ] {
        assert!(USAGE.contains(needle), "usage missing {needle}");
    }
}

#[test]
fn tiny_async_run_succeeds_end_to_end() {
    // The asynchronous mode end-to-end: heterogeneous cohorts, jitter,
    // non-zero training time and a stale-tip policy, driven entirely
    // through CLI flags.
    let args = ParsedArgs::parse([
        "async",
        "--clients",
        "4",
        "--samples",
        "12",
        "--activations",
        "6",
        "--batches",
        "1",
        "--delay-model",
        "cohorts",
        "--delay",
        "0.5",
        "--slow-delay",
        "4",
        "--jitter",
        "0.3",
        "--slowdown",
        "2",
        "--train-time",
        "0.4",
        "--stale-policy",
        "reselect",
    ])
    .expect("parses");
    assert_eq!(args.command(), Command::Async);
    run_command(&args).expect("tiny async run succeeds");
}

#[test]
fn async_rejects_bad_policy_value() {
    let args = ParsedArgs::parse(["async", "--stale-policy", "bogus"]).expect("parses");
    let err = run_command(&args).expect_err("unknown policy must fail");
    assert!(err.to_string().contains("bogus"));
}

#[test]
fn tiny_dag_run_succeeds_end_to_end() {
    // A minimal real dispatch: 1 round on a tiny dataset, exercising the
    // whole dataset -> model -> simulation path behind `run_command`.
    let args = ParsedArgs::parse([
        "dag",
        "--rounds",
        "1",
        "--clients",
        "4",
        "--samples",
        "12",
        "--clients-per-round",
        "2",
        "--batches",
        "1",
    ])
    .expect("parses");
    run_command(&args).expect("tiny dag run succeeds");
}

#[test]
fn scenario_preset_runs_through_the_public_cli_surface() {
    // The declarative path: `dagfl run --preset smoke` resolves, validates
    // and executes a whole scenario through one entry point.
    let args = ParsedArgs::parse(["run", "--preset", "smoke"]).expect("parses");
    assert_eq!(args.command(), Command::Run);
    run_command(&args).expect("smoke preset runs");
}

#[test]
fn scenarios_listing_never_fails() {
    let args = ParsedArgs::parse(["scenarios"]).expect("parses");
    assert_eq!(args.command(), Command::Scenarios);
    run_command(&args).expect("preset listing succeeds");
}
