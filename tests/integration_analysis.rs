//! Workspace-level tests of the specialization analytics subsystem:
//! analysis-enabled runs are deterministic and scheduling-independent,
//! the fig05 alpha sweep shows purity rising with the walk temperature,
//! and — crucially — scenarios *without* an `[analysis]` section keep
//! producing byte-identical summaries and CSVs (golden checks pinned to
//! the pre-analysis output).

use dagfl::scenario::Scale;
use dagfl::{RunReport, Scenario, ScenarioRunner, SweepRunner, SweepSpec};

fn run(scenario: Scenario) -> RunReport {
    ScenarioRunner::new(scenario)
        .expect("scenario validates")
        .run()
        .expect("scenario runs")
}

/// `dagfl run --preset smoke` stdout, captured before the analysis
/// subsystem existed. A scenario without `[analysis]` must keep
/// printing exactly this.
const GOLDEN_SMOKE_SUMMARY: &str = "\
scenario smoke (rounds mode): 2 rounds completed
dataset fmnist-clustered (4 clients, 10 classes, 3 clusters, base pureness 0.375)
recent accuracy 0.3333
specialization: pureness 0.500 modularity 0.000 partitions 2 misclassification 0.250
tangle: 5 transactions, 2 tips, max depth 2
";

/// `results/sweep_smoke.csv` from the checked-in `sweep-smoke` grid,
/// captured before the analysis subsystem existed. No cell opts into
/// analysis, so no `analysis_*` columns may appear.
const GOLDEN_SWEEP_SMOKE_CSV: &str = "\
cell,seed,mode,progress,recent_accuracy,pureness,modularity,partitions,misclassification,transactions,tips,activation_rate,publish_fraction,stale_fraction,mean_publish_latency,delivered,dropped,duplicated,fresh_evals,cached_evals
seed=42,42,rounds,2,0.3333,0.5000,0.0000,2,0.2500,5,2,,,,,,,,4,4
seed=43,43,rounds,2,0.5833,0.5000,0.5000,2,0.2500,5,2,,,,,,,,4,4
";

#[test]
fn smoke_summary_is_byte_identical_to_the_pre_analysis_golden() {
    let report = run(Scenario::preset_at("smoke", Scale::Quick).expect("smoke preset"));
    assert!(report.analysis.is_none(), "smoke must not carry analysis");
    assert_eq!(report.summary(), GOLDEN_SMOKE_SUMMARY);
}

#[test]
fn smoke_sweep_csv_is_byte_identical_to_the_pre_analysis_golden() {
    // The same grid as scenarios/sweep-smoke.toml, minus the file write.
    let spec = SweepSpec::over_preset("sweep-smoke", "smoke").axis("seed", [42, 43]);
    let report = SweepRunner::at_scale(spec, Scale::Quick)
        .expect("sweep validates")
        .run(2)
        .expect("sweep runs");
    assert_eq!(report.comparison_csv_text(), GOLDEN_SWEEP_SMOKE_CSV);
}

#[test]
fn analysis_preset_runs_are_deterministic() {
    let a = run(Scenario::preset_at("analysis-smoke", Scale::Quick).expect("analysis preset"));
    let b = run(Scenario::preset_at("analysis-smoke", Scale::Quick).expect("analysis preset"));
    assert_eq!(a, b);
    let snapshot = a.analysis.expect("analysis-smoke produces a snapshot");
    let params = snapshot
        .parameters
        .as_ref()
        .expect("parameter view present");
    let graph = snapshot.graph.as_ref().expect("graph view present");
    assert_eq!(params.assignments.len(), 6);
    assert_eq!(graph.communities.len(), 6);
    assert!((-1.0..=1.0).contains(&params.silhouette));
    assert!((0.0..=1.0).contains(&params.purity));
    // Cadence 2 over 4 rounds: snapshots at rounds 2 and 4, and the
    // final snapshot is the round-4 one (not a re-run that would
    // advance the walk RNG a second time).
    let rounds: Vec<usize> = a.analysis_track.iter().map(|s| s.round).collect();
    assert_eq!(rounds, vec![2, 4]);
    assert_eq!(a.analysis_track.last(), Some(&snapshot));
}

#[test]
fn analysis_sweeps_are_scheduling_independent() {
    let spec = SweepSpec::over_preset("analysis-sweep", "analysis-smoke").axis("seed", [42, 43]);
    let runner = SweepRunner::at_scale(spec, Scale::Quick).expect("sweep validates");
    let serial = runner.run(1).expect("serial sweep runs");
    let pooled = runner.run(2).expect("pooled sweep runs");
    assert_eq!(serial, pooled);
    assert_eq!(
        serial.comparison_csv_text(),
        pooled.comparison_csv_text(),
        "worker count leaked into the comparison table"
    );
    // Analysis cells grow the analysis column group.
    let header = serial.comparison_header().join(",");
    assert!(
        header.ends_with(
            "analysis_k,analysis_silhouette,analysis_purity,analysis_ari,\
             analysis_communities,analysis_modularity,analysis_agreement"
        ),
        "unexpected header: {header}"
    );
}

#[test]
fn fig05_alpha_sweep_shows_purity_rising_with_alpha() {
    // The subsystem's headline claim, at quick scale: the walk
    // temperature controls how visible the ground-truth clusters are in
    // parameter space. Same grid as scenarios/sweep-fig05-alpha.toml.
    let spec = SweepSpec::over_preset("fig05-analysis", "fig05-alpha10")
        .axis("execution.alpha", [1, 10, 100]);
    let report = SweepRunner::at_scale(spec, Scale::Quick)
        .expect("sweep validates")
        .run(3)
        .expect("sweep runs");
    let purity: Vec<f64> = report
        .cells
        .iter()
        .map(|cell| {
            cell.report
                .analysis
                .as_ref()
                .expect("fig05 presets carry analysis")
                .parameters
                .as_ref()
                .expect("parameter view present")
                .purity
        })
        .collect();
    assert_eq!(purity.len(), 3);
    assert!(
        purity.windows(2).all(|w| w[0] <= w[1]),
        "purity not monotone in alpha: {purity:?}"
    );
    assert!(
        purity[2] > purity[0],
        "purity flat across two decades of alpha: {purity:?}"
    );
}
