//! The fault matrix: each injected fault kind — drops, duplicates,
//! reorders, a partition that heals, a crash that restarts — runs a
//! loopback async session under `FaultyTransport`, and after the run
//! (plus snapshot anti-entropy for losses) every replica must hold the
//! same tangle. Identical seeds must reproduce identical faulted
//! `RunReport`s, serially or pooled.

use dagfl::dag::ModelFactory;
use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::scenario::Scale;
use dagfl::{
    AsyncConfig, AsyncSimulation, CrashWindow, DagConfig, DelayModel, FaultPlan, ModelSpec,
    PartitionWindow, Scenario, ScenarioRunner, SweepRunner, SweepSpec,
};

const CLIENTS: usize = 6;

fn mlp_factory(features: usize) -> ModelFactory {
    ModelSpec::Mlp { hidden: vec![16] }.build_factory(features, 10)
}

fn faulted(plan: FaultPlan) -> AsyncSimulation {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: CLIENTS,
        samples_per_client: 30,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let config = AsyncConfig {
        dag: DagConfig {
            local_batches: 2,
            seed: 42,
            ..DagConfig::default()
        },
        total_activations: 40,
        mean_interarrival: 1.0,
        delay: DelayModel::constant(1.0),
        ..AsyncConfig::default()
    };
    AsyncSimulation::try_new_with_faults(config, dataset, mlp_factory(features), plan)
        .expect("plan is valid")
}

/// Runs the faulted session, reconciles, and asserts one shared digest.
fn run_and_converge(plan: FaultPlan, label: &str) -> AsyncSimulation {
    let mut sim = faulted(plan);
    sim.run().expect("faulted run completes");
    sim.reconcile_replicas();
    let digest = sim.replica_digest(0);
    for client in 1..CLIENTS {
        assert_eq!(
            sim.replica_digest(client),
            digest,
            "{label}: replica {client} diverged"
        );
    }
    sim
}

#[test]
fn dropped_messages_converge_after_reconciliation() {
    let sim = run_and_converge(
        FaultPlan {
            drop: 0.3,
            ..FaultPlan::default()
        },
        "drop",
    );
    let stats = sim.transport_stats();
    assert!(stats.dropped > 0, "a 30% drop rate must actually drop");
    assert!(stats.delivered > 0, "most messages still get through");
}

#[test]
fn duplicated_messages_are_idempotent() {
    let sim = run_and_converge(
        FaultPlan {
            duplicate: 0.4,
            ..FaultPlan::default()
        },
        "duplicate",
    );
    let stats = sim.transport_stats();
    assert!(stats.duplicated > 0, "a 40% duplicate rate must duplicate");
    // Duplicates inflate deliveries but never the tangle: nothing is
    // lost, so the replicas agree even before reconciliation ran.
}

#[test]
fn reordered_messages_converge() {
    let sim = run_and_converge(
        FaultPlan {
            reorder: 0.4,
            delay_boost: 3.0,
            ..FaultPlan::default()
        },
        "reorder",
    );
    assert!(sim.transport_stats().delivered > 0);
}

#[test]
fn partition_heals_and_both_sides_converge() {
    // Peers 0..3 vs 3..6 are cut off for a quarter of the session; the
    // held envelopes arrive at heal time, so no anti-entropy is needed
    // beyond the run itself.
    run_and_converge(
        FaultPlan {
            partitions: vec![PartitionWindow {
                start: 8.0,
                heal: 18.0,
                split: 3,
            }],
            ..FaultPlan::default()
        },
        "partition",
    );
}

#[test]
fn crashed_peer_restarts_and_catches_up() {
    // Peer 5 is down for a quarter of the session and misses whatever
    // was gossiped meanwhile; reconciliation (the loopback analogue of
    // the networked snapshot rejoin) fills the gap.
    run_and_converge(
        FaultPlan {
            crashes: vec![CrashWindow {
                peer: 5,
                at: 10.0,
                restart: 20.0,
            }],
            ..FaultPlan::default()
        },
        "crash",
    );
}

#[test]
fn everything_at_once_still_converges() {
    run_and_converge(
        FaultPlan {
            drop: 0.2,
            duplicate: 0.15,
            reorder: 0.15,
            extra_delay: 0.2,
            delay_boost: 2.0,
            partitions: vec![PartitionWindow {
                start: 6.0,
                heal: 14.0,
                split: 2,
            }],
            crashes: vec![CrashWindow {
                peer: 0,
                at: 18.0,
                restart: 26.0,
            }],
        },
        "chaos",
    );
}

#[test]
fn chaos_preset_reports_are_reproducible() {
    let run = || {
        ScenarioRunner::new(Scenario::preset_at("chaos-smoke", Scale::Quick).unwrap())
            .expect("chaos-smoke validates")
            .run()
            .expect("chaos-smoke runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same fault plan, same full report");
    let m = a.async_metrics.as_ref().expect("async metrics");
    assert!(m.dropped > 0, "the chaos preset drops messages");
    assert!(m.duplicated > 0, "the chaos preset duplicates messages");
    assert!(
        a.summary().contains("faults:"),
        "fault activity shows up in the human summary"
    );
}

#[test]
fn faulted_sweeps_are_scheduling_independent() {
    // The determinism guarantee under faults, end to end: a faulted
    // 2-cell grid with 1 worker and with 2 workers produces equal
    // reports and byte-identical comparison CSV text.
    let spec = SweepSpec::over_preset("chaos-sweep", "chaos-smoke").axis("seed", ["41", "42"]);
    let runner = SweepRunner::at_scale(spec, Scale::Quick).expect("sweep validates");
    let serial = runner.run(1).expect("serial sweep runs");
    let pooled = runner.run(2).expect("pooled sweep runs");
    assert_eq!(serial, pooled);
    assert_eq!(
        serial.comparison_csv_text().as_bytes(),
        pooled.comparison_csv_text().as_bytes()
    );
}
