//! Workspace-level tests of the declarative scenario layer: the three
//! equivalent ways to express an experiment (preset name, TOML file,
//! builder API) produce the same runs, runs are deterministic, and the
//! checked-in `scenarios/*.toml` files stay valid and in sync with the
//! preset registry.

use dagfl::scenario::{AttackSpec, Scale};
use dagfl::{
    DatasetSpec, ExecutionSpec, RunReport, Scenario, ScenarioRunner, SweepRunner, SweepSpec,
};

fn run(scenario: Scenario) -> RunReport {
    ScenarioRunner::new(scenario)
        .expect("scenario validates")
        .run()
        .expect("scenario runs")
}

#[test]
fn preset_file_and_builder_agree() {
    // Preset name.
    let preset = Scenario::preset_at("smoke", Scale::Quick).expect("smoke preset");
    // TOML file (serialize -> reparse simulates the checked-in file).
    let file = Scenario::from_toml(&preset.to_toml()).expect("file parses");
    // Builder API.
    let built = Scenario::new(
        "smoke",
        DatasetSpec::Fmnist {
            clients: 4,
            samples: 30,
            relaxation: 0.0,
            seed: 42,
        },
    )
    .rounds(2)
    .clients_per_round(2)
    .local_batches(2);
    assert_eq!(preset, file);
    assert_eq!(preset, built);
    // All three therefore produce the same report.
    assert_eq!(run(preset), run(built));
}

#[test]
fn preset_runs_are_deterministic() {
    // The satellite guarantee: one preset, same seed, two runs,
    // identical RunReport metrics (field-for-field equality).
    let a = run(Scenario::preset_at("smoke", Scale::Quick).unwrap());
    let b = run(Scenario::preset_at("smoke", Scale::Quick).unwrap());
    assert_eq!(a, b);
    assert_eq!(a.round_accuracy, b.round_accuracy);
    assert_eq!(
        a.specialization.approval_pureness,
        b.specialization.approval_pureness
    );
    assert_eq!(a.tangle, b.tangle);
}

#[test]
fn different_seeds_change_the_report() {
    let a = run(Scenario::preset_at("smoke", Scale::Quick).unwrap());
    let b = run(Scenario::preset_at("smoke", Scale::Quick)
        .unwrap()
        .with_seed(7));
    assert_ne!(a.round_accuracy, b.round_accuracy);
}

#[test]
fn async_preset_runs_deterministically_behind_the_same_api() {
    let shrink = |mut s: Scenario| {
        if let ExecutionSpec::Async { config, .. } = &mut s.execution {
            config.total_activations = 12;
            config.dag.local_batches = 2;
        }
        s
    };
    let a = run(shrink(
        Scenario::preset_at("async-delay2", Scale::Quick).unwrap(),
    ));
    let b = run(shrink(
        Scenario::preset_at("async-delay2", Scale::Quick).unwrap(),
    ));
    assert_eq!(a, b);
    assert_eq!(a.mode, "async");
    assert_eq!(a.progress, 12);
    assert!(a.async_metrics.is_some());
}

#[test]
fn attack_preset_reports_poisoning_deterministically() {
    let shrink = |mut s: Scenario| {
        s.attack = Some(AttackSpec {
            clean_rounds: 2,
            attack_rounds: 2,
            measure_every: 2,
            ..s.attack.expect("poisoning preset has an attack")
        });
        if let ExecutionSpec::Rounds(dag) = &mut s.execution {
            dag.local_batches = 2;
        }
        s
    };
    let a = run(shrink(
        Scenario::preset_at("poisoning-p0.3", Scale::Quick).unwrap(),
    ));
    let b = run(shrink(
        Scenario::preset_at("poisoning-p0.3", Scale::Quick).unwrap(),
    ));
    assert_eq!(a, b);
    let poisoning = a.poisoning.expect("poisoning summary");
    assert!(!poisoning.poisoned_clients.is_empty());
}

#[test]
fn checked_in_scenario_files_parse_validate_and_match_their_presets() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut checked = 0;
    let mut sweeps_checked = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ directory exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|ext| ext.to_str()) != Some("toml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("scenario file reads");
        if dagfl::scenario::is_sweep_toml(&text) {
            // Sweep files: load (anchoring relative file bases like the
            // CLI does), validate via a full quick-scale expansion, and
            // pin against the sweep preset registry.
            let spec = SweepSpec::load(&path)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
            spec.validate()
                .unwrap_or_else(|e| panic!("{} does not validate: {e}", path.display()));
            let preset =
                SweepSpec::preset(&spec.name).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(spec, preset, "{} drifted from its preset", path.display());
            sweeps_checked += 1;
            continue;
        }
        let scenario = Scenario::from_toml(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{} does not validate: {e}", path.display()));
        // Files are dumped from the registry at quick scale; any drift
        // between a file and its preset fails here.
        let preset = Scenario::preset_at(&scenario.name, Scale::Quick)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            scenario,
            preset,
            "{} drifted from its preset",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} scenario files checked");
    assert!(
        sweeps_checked >= 5,
        "only {sweeps_checked} sweep files checked"
    );
}

#[test]
fn sweep_grids_are_scheduling_independent_end_to_end() {
    // The acceptance guarantee, exercised through the facade: a >= 4-cell
    // grid run with 1 worker and with 2 workers produces equal reports
    // and byte-identical comparison CSV text.
    let spec = SweepSpec::over_preset("ws-sweep", "smoke")
        .axis("execution.alpha", ["1", "10"])
        .axis("replicate", ["0", "1"]);
    let runner = SweepRunner::at_scale(spec, Scale::Quick).expect("sweep validates");
    assert_eq!(runner.cells().len(), 4);
    let serial = runner.run(1).expect("serial sweep runs");
    let pooled = runner.run(2).expect("pooled sweep runs");
    assert_eq!(serial, pooled);
    assert_eq!(
        serial.comparison_csv_text().as_bytes(),
        pooled.comparison_csv_text().as_bytes()
    );
    // Replicates actually decorrelate the cells.
    assert_ne!(
        serial.cells[0].report.round_accuracy,
        serial.cells[1].report.round_accuracy
    );
}

#[test]
fn malformed_scenarios_are_rejected_end_to_end() {
    // Unknown key.
    assert!(
        Scenario::from_toml("name = \"x\"\n[dataset]\nkind = \"fmnist\"\nclinets = 3\n").is_err()
    );
    // Out-of-range value parses but fails validation.
    let s = Scenario::from_toml(
        "name = \"x\"\n[dataset]\nkind = \"fmnist\"\n[execution]\nlearning_rate = -1.0\n",
    )
    .expect("parses");
    assert!(ScenarioRunner::new(s).is_err());
}
