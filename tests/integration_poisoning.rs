//! End-to-end poisoning robustness (§5.3.4): flipped-label attackers are
//! contained by the accuracy-aware tip selection.

use dagfl::datasets::{fmnist_by_author, FmnistConfig};
use dagfl::{DagConfig, ModelSpec, PoisoningConfig, PoisoningScenario, TipSelector};

fn scenario(selector: TipSelector, fraction: f64, seed: u64) -> PoisoningScenario {
    let dataset = fmnist_by_author(&FmnistConfig {
        num_clients: 10,
        samples_per_client: 80,
        seed,
        ..FmnistConfig::default()
    });
    let factory = ModelSpec::Mlp { hidden: vec![24] }
        .build_factory(dataset.feature_len(), dataset.num_classes());
    PoisoningScenario::new(
        PoisoningConfig {
            dag: DagConfig {
                clients_per_round: 5,
                local_batches: 5,
                seed,
                ..DagConfig::default()
            }
            .with_tip_selector(selector),
            clean_rounds: 8,
            attack_rounds: 8,
            poison_fraction: fraction,
            class_a: 3,
            class_b: 8,
            measure_every: 4,
        },
        dataset,
        factory,
    )
}

#[test]
fn unpoisoned_network_has_no_poisoned_approvals() {
    let mut s = scenario(TipSelector::default(), 0.0, 1);
    let measurements = s.run().expect("scenario runs");
    for m in &measurements {
        assert_eq!(m.approved_poisoned, 0.0);
    }
}

#[test]
fn flipped_fraction_is_bounded_under_attack() {
    let mut s = scenario(TipSelector::default(), 0.2, 2);
    let measurements = s.run().expect("scenario runs");
    let last = measurements.last().expect("measurements exist");
    // The paper reports p = 0.2 attacks stay within the clean-run variance
    // (< 30% flipped). Scaled-down runs are noisier; assert containment
    // well below total takeover.
    assert!(
        last.flipped_fraction < 0.6,
        "attack dominated the network: {:.3}",
        last.flipped_fraction
    );
}

#[test]
fn poisoned_clients_are_identified_in_report() {
    let mut s = scenario(TipSelector::default(), 0.3, 3);
    s.run().expect("scenario runs");
    let report = s.report().expect("attack ran").clone();
    assert_eq!(report.poisoned_clients.len(), 3);
    assert_eq!(report.class_a, 3);
    assert_eq!(report.class_b, 8);
    // The distribution rows must account for every client.
    let rows = s.poisoned_cluster_distribution();
    let total: usize = rows.iter().map(|(_, b, p)| b + p).sum();
    assert_eq!(total, 10);
}

#[test]
fn accuracy_selector_limits_poison_spread_vs_random() {
    // The paper's qualitative claim (Figure 12): with the accuracy
    // selector, poisoning effects on mispredictions stay no worse than the
    // random selector's (even though the random selector may approve fewer
    // poisoned transactions, Figure 13).
    let mut accuracy = scenario(TipSelector::default(), 0.3, 4);
    let acc_measure = accuracy.run().expect("accuracy scenario runs");
    let mut random = scenario(TipSelector::Random, 0.3, 4);
    let rand_measure = random.run().expect("random scenario runs");
    let acc_last = acc_measure.last().unwrap().flipped_fraction;
    let rand_last = rand_measure.last().unwrap().flipped_fraction;
    // Generous tolerance: scaled-down runs are noisy, but the accuracy
    // selector must not be dramatically worse than random.
    assert!(
        acc_last <= rand_last + 0.25,
        "accuracy selector ({acc_last:.3}) much worse than random ({rand_last:.3})"
    );
}
