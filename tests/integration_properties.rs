//! Cross-crate property-based tests: invariants of the full pipeline.

use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::graphs::{louvain, modularity};
use dagfl::nn::average_parameters;
use dagfl::{DagConfig, ModelSpec, Normalization, Simulation, TipSelector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_sim(seed: u64, alpha: f32, rounds: usize) -> Simulation {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 6,
        samples_per_client: 30,
        seed,
        ..FmnistConfig::default()
    });
    let factory = ModelSpec::Linear.build_factory(dataset.feature_len(), 10);
    let mut sim = Simulation::new(
        DagConfig {
            rounds,
            clients_per_round: 3,
            local_batches: 2,
            seed,
            ..DagConfig::default()
        }
        .with_tip_selector(TipSelector::Accuracy {
            alpha,
            normalization: Normalization::Simple,
        }),
        dataset,
        factory,
    );
    sim.run().expect("simulation runs");
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulation_invariants_hold(seed in 0u64..500, alpha in 0.1f32..100.0) {
        let sim = tiny_sim(seed, alpha, 3);
        // Pureness is a fraction.
        let p = sim.approval_pureness();
        prop_assert!((0.0..=1.0).contains(&p));
        // The tangle is acyclic and all issuers are valid client ids.
        let tangle = sim.tangle().to_tangle();
        for tx in tangle.iter() {
            for parent in tx.parents() {
                prop_assert!(parent.index() < tx.id().index());
            }
            if let Some(issuer) = tx.issuer() {
                prop_assert!((issuer as usize) < sim.dataset().num_clients());
            }
        }
        // Per-round metric vectors are consistent.
        for m in sim.history() {
            prop_assert_eq!(m.accuracies.len(), m.active_clients.len());
            prop_assert_eq!(m.losses.len(), m.active_clients.len());
            prop_assert!(m.published <= m.active_clients.len());
            for &acc in &m.accuracies {
                prop_assert!((0.0..=1.0).contains(&acc));
            }
        }
    }

    #[test]
    fn client_graph_modularity_in_bounds(seed in 0u64..200) {
        let sim = tiny_sim(seed, 10.0, 3);
        let graph = sim.client_graph();
        let partition = louvain(&graph, &mut StdRng::seed_from_u64(seed));
        let q = modularity(&graph, &partition);
        prop_assert!((-0.5 - 1e-9..=1.0 + 1e-9).contains(&q));
    }

    #[test]
    fn averaging_is_idempotent_on_identical_models(
        params in proptest::collection::vec(-10.0f32..10.0, 1..100)
    ) {
        let avg = average_parameters(&[&params, &params]);
        for (a, b) in avg.iter().zip(&params) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn averaging_is_commutative(
        a in proptest::collection::vec(-10.0f32..10.0, 20),
        b in proptest::collection::vec(-10.0f32..10.0, 20),
    ) {
        let ab = average_parameters(&[&a, &b]);
        let ba = average_parameters(&[&b, &a]);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }
}

#[test]
fn genesis_always_remains_reachable() {
    let sim = tiny_sim(42, 10.0, 4);
    let tangle = sim.tangle().to_tangle();
    let genesis = tangle.genesis();
    for tx in tangle.iter() {
        let cone = tangle.past_cone(tx.id()).expect("cone exists");
        assert!(cone.contains(&genesis), "{} cannot reach genesis", tx.id());
    }
}
