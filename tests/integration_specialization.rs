//! End-to-end test of the paper's central claim: specialization emerges
//! implicitly from accuracy-biased tip selection.

use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::{DagConfig, ModelSpec, Simulation};

fn run_simulation(rounds: usize) -> Simulation {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 12,
        samples_per_client: 60,
        ..FmnistConfig::default()
    });
    let factory = ModelSpec::Mlp { hidden: vec![24] }
        .build_factory(dataset.feature_len(), dataset.num_classes());
    let config = DagConfig {
        rounds,
        clients_per_round: 6,
        local_batches: 5,
        ..DagConfig::default()
    };
    let mut sim = Simulation::new(config, dataset, factory);
    sim.run().expect("simulation runs");
    sim
}

#[test]
fn approval_pureness_exceeds_random_baseline() {
    let sim = run_simulation(15);
    let base = sim.dataset().base_pureness();
    let pureness = sim.approval_pureness();
    assert!(
        pureness > base + 0.2,
        "pureness {pureness:.3} not clearly above the random baseline {base:.3}"
    );
}

#[test]
fn specialization_metrics_show_cluster_structure() {
    let sim = run_simulation(15);
    let spec = sim.specialization_metrics();
    // The paper: modularity of G_clients should be positive for every DAG
    // of model updates under accuracy-biased tip selection.
    assert!(
        spec.modularity > 0.0,
        "modularity {} not positive",
        spec.modularity
    );
    // Most clients should land in a community dominated by their own
    // ground-truth cluster.
    assert!(
        spec.misclassification < 0.5,
        "misclassification {} too high",
        spec.misclassification
    );
    assert!(spec.partitions >= 2, "no community structure found");
}

#[test]
fn accuracy_improves_over_training() {
    let sim = run_simulation(15);
    let early: f32 = sim.history()[..3]
        .iter()
        .map(|m| m.mean_accuracy())
        .sum::<f32>()
        / 3.0;
    let late: f32 = sim.history()[12..]
        .iter()
        .map(|m| m.mean_accuracy())
        .sum::<f32>()
        / 3.0;
    assert!(
        late > early + 0.1,
        "no training progress: {early:.3} -> {late:.3}"
    );
}

#[test]
fn tangle_keeps_growing_and_stays_consistent() {
    let sim = run_simulation(10);
    let tangle = sim.tangle().to_tangle();
    assert!(tangle.len() > 10, "too few publications: {}", tangle.len());
    // Every non-genesis transaction records its issuer and approves
    // existing transactions.
    for tx in tangle.iter().skip(1) {
        assert!(tx.issuer().is_some());
        assert!(!tx.parents().is_empty());
        for p in tx.parents() {
            assert!(p.index() < tx.id().index(), "acyclicity violated");
        }
    }
}

#[test]
fn published_transactions_beat_their_references() {
    let sim = run_simulation(8);
    for metrics in sim.history() {
        // The publish rule (§4.1): published updates improved on the
        // averaged parents, so per round, mean trained accuracy of
        // publishers is at least the reference accuracy.
        for (acc, reference) in metrics.accuracies.iter().zip(&metrics.reference_accuracies) {
            // Non-published clients may regress; published ones cannot.
            // We can't distinguish them here, so assert the weaker global
            // invariant that nothing became dramatically worse.
            assert!(acc + 0.5 >= *reference);
        }
    }
}
