//! Sharded-core invariants: equal [`RunReport`]s across repeated runs,
//! event-loop worker counts and sweep parallelism, plus insertion-order
//! independence of the content-addressed tangle digest.

use dagfl::dag::{tangle_digest, ModelPayload, ModelTangle, ShardedModelTangle};
use dagfl::scenario::{DatasetSpec, Scenario, ScenarioRunner, SweepRunner, SweepSpec};
use dagfl::tangle::TangleRead;
use dagfl::{AsyncConfig, DagConfig, DelayModel};
use proptest::prelude::*;

fn small_dataset() -> DatasetSpec {
    DatasetSpec::Fmnist {
        clients: 6,
        samples: 30,
        relaxation: 0.0,
        seed: 42,
    }
}

fn rounds_scenario() -> Scenario {
    Scenario::new("scale-eq-rounds", small_dataset())
        .rounds(3)
        .clients_per_round(3)
        .local_batches(2)
}

fn async_scenario(workers: usize) -> Scenario {
    Scenario::new("scale-eq-async", small_dataset()).asynchronous(AsyncConfig {
        dag: DagConfig {
            local_batches: 2,
            batch_size: 5,
            ..DagConfig::default()
        },
        total_activations: 30,
        mean_interarrival: 1.0,
        delay: DelayModel::constant(1.0),
        train_time: 0.5,
        workers,
        ..AsyncConfig::default()
    })
}

#[test]
fn rounds_reports_are_identical_across_runs() {
    let a = ScenarioRunner::new(rounds_scenario())
        .unwrap()
        .run()
        .unwrap();
    let b = ScenarioRunner::new(rounds_scenario())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn async_reports_are_identical_at_any_worker_count() {
    let serial = ScenarioRunner::new(async_scenario(1))
        .unwrap()
        .run()
        .unwrap();
    for workers in [2, 3, 5] {
        let parallel = ScenarioRunner::new(async_scenario(workers))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(serial, parallel, "workers={workers} diverged from serial");
        assert_eq!(serial.tangle_digest, parallel.tangle_digest);
    }
}

#[test]
fn rounds_sweep_reports_are_identical_for_any_job_count() {
    let spec = SweepSpec::over_scenario("scale-eq-sweep-rounds", rounds_scenario())
        .axis("alpha", ["1", "10"])
        .axis("seed", ["42", "43"]);
    let serial = SweepRunner::new(spec.clone()).unwrap().run(1).unwrap();
    let parallel = SweepRunner::new(spec).unwrap().run(4).unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn async_sweep_reports_are_identical_for_any_job_count() {
    let spec = SweepSpec::over_scenario("scale-eq-sweep-async", async_scenario(2))
        .axis("alpha", ["1", "10"]);
    let serial = SweepRunner::new(spec.clone()).unwrap().run(1).unwrap();
    let parallel = SweepRunner::new(spec).unwrap().run(3).unwrap();
    assert_eq!(serial, parallel);
}

/// A small distinctive payload for transaction `i`.
fn payload(i: usize) -> ModelPayload {
    ModelPayload::new(vec![i as f32 + 0.5, (i * 7) as f32])
}

/// The parents of scripted transaction `i` (0-based among non-genesis
/// transactions) as sequential indices: selector `s` picks among the
/// genesis (0) and the `i` earlier transactions.
fn scripted_parents(script: &[(u8, u8)], i: usize) -> (usize, usize) {
    let (a, b) = script[i];
    (a as usize % (i + 1), b as usize % (i + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any dependency-respecting interleaving of sharded inserts yields
    /// the same tip set and the same content digest as sequential
    /// insertion: the digest never looks at dense ids.
    #[test]
    fn sharded_insert_order_preserves_tips_and_digest(
        script in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..30),
        seed in any::<u64>(),
    ) {
        // Sequential reference: insert in script order.
        let mut sequential = ModelTangle::new(payload(0));
        let mut ids = vec![sequential.genesis()];
        for i in 0..script.len() {
            let (pa, pb) = scripted_parents(&script, i);
            let id = sequential
                .attach_with_meta(
                    payload(i + 1),
                    &[ids[pa], ids[pb]],
                    Some((i % 5) as u32),
                    i as u32,
                )
                .expect("parents exist");
            ids.push(id);
        }

        // Sharded copy: insert in a seed-derived random order that only
        // respects the parent-before-child constraint.
        let sharded = ShardedModelTangle::new(payload(0));
        let mut mapped: Vec<Option<dagfl::tangle::TxId>> = vec![None; script.len() + 1];
        mapped[0] = Some(sharded.genesis());
        let mut pending: Vec<usize> = (1..=script.len()).collect();
        let mut state = seed;
        while !pending.is_empty() {
            let ready: Vec<usize> = pending
                .iter()
                .copied()
                .filter(|&i| {
                    let (pa, pb) = scripted_parents(&script, i - 1);
                    mapped[pa].is_some() && mapped[pb].is_some()
                })
                .collect();
            // Deterministic xorshift pick among the ready transactions.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = ready[(state % ready.len() as u64) as usize];
            let (pa, pb) = scripted_parents(&script, i - 1);
            let id = sharded
                .attach_with_meta(
                    payload(i),
                    &[mapped[pa].unwrap(), mapped[pb].unwrap()],
                    Some(((i - 1) % 5) as u32),
                    (i - 1) as u32,
                )
                .expect("parents inserted first");
            mapped[i] = Some(id);
            pending.retain(|&p| p != i);
        }

        prop_assert_eq!(tangle_digest(&sequential), tangle_digest(&sharded));

        // Same tip set, compared by payload content (dense ids differ
        // between the two insertion orders).
        fn tip_key<T: TangleRead<ModelPayload>>(
            tangle: &T,
            tips: Vec<dagfl::tangle::TxId>,
        ) -> Vec<u32> {
            let mut keys: Vec<u32> = tips
                .into_iter()
                .map(|id| tangle.payload_of(id).unwrap().params()[0].to_bits())
                .collect();
            keys.sort_unstable();
            keys
        }
        prop_assert_eq!(
            tip_key(&sequential, sequential.tips()),
            tip_key(&sharded, sharded.tips())
        );
    }
}
