//! The α trade-off (§4.2, Figures 5–7): higher α means more deterministic,
//! specialization-friendly walks; lower α means more randomness and mixing
//! across clusters.

use dagfl::datasets::{fmnist_clustered, FmnistConfig};
use dagfl::{DagConfig, ModelSpec, Normalization, Simulation, TipSelector};

fn run_with_selector(selector: TipSelector, seed: u64) -> Simulation {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 12,
        samples_per_client: 50,
        seed,
        ..FmnistConfig::default()
    });
    let factory = ModelSpec::Mlp { hidden: vec![24] }
        .build_factory(dataset.feature_len(), dataset.num_classes());
    let mut sim = Simulation::new(
        DagConfig {
            rounds: 12,
            clients_per_round: 6,
            local_batches: 5,
            seed,
            ..DagConfig::default()
        }
        .with_tip_selector(selector),
        dataset,
        factory,
    );
    sim.run().expect("simulation runs");
    sim
}

fn alpha_selector(alpha: f32) -> TipSelector {
    TipSelector::Accuracy {
        alpha,
        normalization: Normalization::Simple,
    }
}

#[test]
fn high_alpha_yields_purer_approvals_than_random() {
    let high = run_with_selector(alpha_selector(100.0), 11);
    let random = run_with_selector(TipSelector::Random, 11);
    let high_p = high.approval_pureness();
    let random_p = random.approval_pureness();
    assert!(
        high_p > random_p,
        "alpha=100 pureness {high_p:.3} not above random {random_p:.3}"
    );
}

#[test]
fn high_alpha_beats_low_alpha_on_pureness() {
    let high = run_with_selector(alpha_selector(100.0), 13);
    let low = run_with_selector(alpha_selector(0.1), 13);
    let high_p = high.approval_pureness();
    let low_p = low.approval_pureness();
    assert!(
        high_p >= low_p,
        "alpha=100 pureness {high_p:.3} below alpha=0.1 pureness {low_p:.3}"
    );
}

#[test]
fn random_selector_pureness_is_near_base() {
    let random = run_with_selector(TipSelector::Random, 17);
    let base = random.dataset().base_pureness();
    let p = random.approval_pureness();
    // Uniform approvals should hover around the base pureness; allow a
    // wide band because small runs are noisy.
    assert!(
        (p - base).abs() < 0.35,
        "random pureness {p:.3} implausibly far from base {base:.3}"
    );
}

#[test]
fn dynamic_normalization_specializes_at_low_alpha() {
    // Figure 7: with alpha = 1 the dynamic normalization achieves a higher
    // approval pureness than the simple normalization.
    let simple = run_with_selector(
        TipSelector::Accuracy {
            alpha: 1.0,
            normalization: Normalization::Simple,
        },
        19,
    );
    let dynamic = run_with_selector(
        TipSelector::Accuracy {
            alpha: 1.0,
            normalization: Normalization::Dynamic,
        },
        19,
    );
    let simple_p = simple.approval_pureness();
    let dynamic_p = dynamic.approval_pureness();
    assert!(
        dynamic_p + 0.1 >= simple_p,
        "dynamic pureness {dynamic_p:.3} much below simple {simple_p:.3}"
    );
}

#[test]
fn cumulative_weight_ablation_runs() {
    // The classic IOTA bias (no accuracy information) must run fine and
    // produce near-random pureness.
    let sim = run_with_selector(TipSelector::CumulativeWeight { alpha: 0.5 }, 23);
    let p = sim.approval_pureness();
    assert!((0.0..=1.0).contains(&p));
    assert!(sim.tangle().len() > 1);
}
