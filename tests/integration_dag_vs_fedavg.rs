//! Cross-algorithm comparison on strongly non-IID data (the Figure 9
//! claim): the Specializing DAG reaches at least comparable accuracy with
//! a tighter per-client spread than a single FedAvg global model.

use dagfl::datasets::{fmnist_clustered, FederatedDataset, FmnistConfig};
use dagfl::tensor::Summary;
use dagfl::{DagConfig, FedConfig, FederatedServer, ModelSpec, Simulation};

const ROUNDS: usize = 20;

fn dataset() -> FederatedDataset {
    fmnist_clustered(&FmnistConfig {
        num_clients: 12,
        samples_per_client: 60,
        ..FmnistConfig::default()
    })
}

fn factory(features: usize) -> dagfl::dag::ModelFactory {
    ModelSpec::Mlp { hidden: vec![24] }.build_factory(features, 10)
}

fn late_accuracies_dag(sim: &Simulation) -> Vec<f32> {
    sim.history()[ROUNDS - 5..]
        .iter()
        .flat_map(|m| m.accuracies.iter().copied())
        .collect()
}

fn late_accuracies_fed(server: &FederatedServer) -> Vec<f32> {
    server.history()[ROUNDS - 5..]
        .iter()
        .flat_map(|m| m.accuracies.iter().copied())
        .collect()
}

#[test]
fn dag_matches_or_beats_fedavg_on_clustered_data() {
    let ds = dataset();
    let features = ds.feature_len();

    let mut sim = Simulation::new(
        DagConfig {
            rounds: ROUNDS,
            clients_per_round: 6,
            local_batches: 5,
            ..DagConfig::default()
        },
        ds.clone(),
        factory(features),
    );
    sim.run().expect("dag runs");

    let mut server = FederatedServer::new(
        FedConfig {
            rounds: ROUNDS,
            clients_per_round: 6,
            local_batches: 5,
            ..FedConfig::default()
        },
        ds,
        factory(features),
    );
    server.run().expect("fedavg runs");

    let dag = Summary::of(&late_accuracies_dag(&sim));
    let fed = Summary::of(&late_accuracies_fed(&server));
    // Figure 9: the DAG's specialized models reach at least comparable
    // accuracy on fully clustered data. Allow a small tolerance: this is a
    // scaled-down run.
    assert!(
        dag.mean >= fed.mean - 0.05,
        "DAG mean {:.3} clearly below FedAvg mean {:.3}",
        dag.mean,
        fed.mean
    );
}

#[test]
fn both_algorithms_learn_something() {
    let ds = dataset();
    let features = ds.feature_len();
    let mut sim = Simulation::new(
        DagConfig {
            rounds: ROUNDS,
            clients_per_round: 6,
            local_batches: 5,
            ..DagConfig::default()
        },
        ds.clone(),
        factory(features),
    );
    sim.run().expect("dag runs");
    let mut server = FederatedServer::new(
        FedConfig {
            rounds: ROUNDS,
            clients_per_round: 6,
            local_batches: 5,
            ..FedConfig::default()
        },
        ds,
        factory(features),
    );
    server.run().expect("fedavg runs");
    // Random guessing on 10 classes is 0.1.
    assert!(Summary::of(&late_accuracies_dag(&sim)).mean > 0.3);
    assert!(Summary::of(&late_accuracies_fed(&server)).mean > 0.15);
}

#[test]
fn fedprox_converges_on_heterogeneous_synthetic_data() {
    use dagfl::datasets::{fedprox_synthetic, FedProxConfig};
    let ds = fedprox_synthetic(&FedProxConfig {
        num_clients: 10,
        ..FedProxConfig::default()
    });
    let logreg = ModelSpec::Linear.build_factory(ds.feature_len(), 10);
    let base = FedConfig {
        rounds: 15,
        clients_per_round: 5,
        local_batches: 10,
        learning_rate: 0.05,
        ..FedConfig::default()
    };
    let mut prox = FederatedServer::new(base.with_proximal_mu(0.5), ds, logreg);
    let history = prox.run().expect("fedprox runs");
    let early = history[0].mean_loss();
    let late = history.last().unwrap().mean_loss();
    assert!(
        late < early,
        "FedProx loss did not decrease: {early:.3} -> {late:.3}"
    );
}
