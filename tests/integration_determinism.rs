//! Reproducibility: every experiment in the workspace is deterministic for
//! a fixed seed, and seeds actually matter.

use dagfl::dag::ModelFactory;
use dagfl::datasets::{fmnist_clustered, poets, FmnistConfig, PoetsConfig, POETS_VOCAB};
use dagfl::{DagConfig, FedConfig, FederatedServer, ModelSpec, Simulation};

fn mlp_factory(features: usize) -> ModelFactory {
    ModelSpec::Mlp { hidden: vec![16] }.build_factory(features, 10)
}

fn dag_fingerprint(seed: u64, parallel: bool) -> (usize, Vec<f32>) {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 8,
        samples_per_client: 40,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let mut sim = Simulation::new(
        DagConfig {
            rounds: 5,
            clients_per_round: 4,
            local_batches: 3,
            seed,
            parallel,
            ..DagConfig::default()
        },
        dataset,
        mlp_factory(features),
    );
    sim.run().expect("simulation runs");
    let accs = sim.history().iter().map(|m| m.mean_accuracy()).collect();
    (sim.tangle().len(), accs)
}

#[test]
fn dag_runs_are_reproducible() {
    assert_eq!(dag_fingerprint(7, false), dag_fingerprint(7, false));
}

#[test]
fn parallel_execution_matches_sequential() {
    // Clients work on a per-round snapshot, so thread interleaving must
    // not affect results.
    assert_eq!(dag_fingerprint(7, true), dag_fingerprint(7, false));
}

#[test]
fn parallel_round_path_produces_an_identical_run_report() {
    // The sweep engine stacks a second layer of parallelism (cell
    // workers) on top of the per-round client fan-out, so the parallel
    // round path must be bit-deterministic: the *complete* RunReport —
    // per-round accuracy/loss, specialization tracking, tangle stats —
    // must be field-for-field equal between `parallel = true/false` on
    // the same seed, not just the headline fingerprint.
    use dagfl::scenario::DatasetSpec;
    use dagfl::{Scenario, ScenarioRunner};
    let report_with = |parallel: bool| {
        let mut scenario = Scenario::new(
            "parallel-determinism",
            DatasetSpec::Fmnist {
                clients: 8,
                samples: 40,
                relaxation: 0.0,
                seed: 7,
            },
        )
        .rounds(4)
        .clients_per_round(4)
        .local_batches(3)
        .tracking(2);
        scenario.execution.dag_mut().parallel = parallel;
        ScenarioRunner::new(scenario)
            .expect("scenario validates")
            .run()
            .expect("scenario runs")
    };
    let parallel = report_with(true);
    let sequential = report_with(false);
    assert_eq!(parallel.round_accuracy, sequential.round_accuracy);
    assert_eq!(parallel.round_loss, sequential.round_loss);
    assert_eq!(
        parallel.specialization_track,
        sequential.specialization_track
    );
    assert_eq!(parallel.tangle, sequential.tangle);
    assert_eq!(parallel, sequential);
}

#[test]
fn different_seeds_differ() {
    assert_ne!(dag_fingerprint(7, false).1, dag_fingerprint(8, false).1);
}

#[test]
fn fedavg_runs_are_reproducible() {
    let run = |seed: u64| {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 8,
            samples_per_client: 40,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let mut server = FederatedServer::new(
            FedConfig {
                rounds: 4,
                clients_per_round: 4,
                local_batches: 3,
                seed,
                ..FedConfig::default()
            },
            dataset,
            mlp_factory(features),
        );
        server.run().expect("fedavg runs");
        server.global_parameters().to_vec()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

#[test]
fn char_rnn_dag_is_reproducible() {
    let run = || {
        let dataset = poets(&PoetsConfig {
            clients_per_language: 3,
            samples_per_client: 40,
            seq_len: 8,
            seed: 5,
        });
        let factory = ModelSpec::CharRnn {
            embed: 4,
            hidden: 12,
        }
        .build_factory(0, POETS_VOCAB.len());
        let mut sim = Simulation::new(
            DagConfig {
                rounds: 3,
                clients_per_round: 3,
                local_batches: 3,
                learning_rate: 0.5,
                ..DagConfig::default()
            },
            dataset,
            factory,
        );
        sim.run().expect("poets dag runs");
        sim.history()
            .iter()
            .map(|m| m.mean_accuracy())
            .collect::<Vec<f32>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn model_parameters_roundtrip_through_codec() {
    use dagfl::nn::{decode_parameters, encode_parameters};
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let model = mlp_factory(196)(&mut rng);
    let params = model.parameters();
    let decoded = decode_parameters(&encode_parameters(&params)).expect("decodes");
    assert_eq!(params, decoded);
}
