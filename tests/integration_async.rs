//! Workspace-level tests of the event-driven (round-free) simulation and
//! the flooding-hardening features, exercised through the public API.

use dagfl::dag::{AsyncConfig, AsyncSimulation, GarbageAttackConfig, GarbageAttackScenario};
use dagfl::datasets::{fmnist_by_author, fmnist_clustered, FmnistConfig};
use dagfl::{
    ComputeProfile, DagConfig, DelayModel, ExecutionMode, ModelSpec, PublishGate, StaleTipPolicy,
    TipSelector,
};

fn factory(features: usize) -> dagfl::dag::ModelFactory {
    ModelSpec::Mlp { hidden: vec![16] }.build_factory(features, 10)
}

#[test]
fn async_simulation_learns_and_specializes() {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 9,
        samples_per_client: 50,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let base = dataset.base_pureness();
    let mut sim = AsyncSimulation::new(
        AsyncConfig {
            dag: DagConfig {
                local_batches: 4,
                ..DagConfig::default()
            },
            total_activations: 70,
            delay: DelayModel::constant(3.0),
            ..AsyncConfig::default()
        },
        dataset,
        factory(features),
    );
    sim.run().expect("async run");
    assert!(sim.recent_accuracy(10) > 0.4, "no learning progress");
    assert!(
        sim.approval_pureness() > base,
        "no specialization: {} vs base {}",
        sim.approval_pureness(),
        base
    );
}

#[test]
fn zero_delay_collapses_to_a_chain() {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 9,
        samples_per_client: 50,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let mut sim = AsyncSimulation::new(
        AsyncConfig {
            dag: DagConfig {
                local_batches: 4,
                ..DagConfig::default()
            },
            total_activations: 50,
            delay: DelayModel::constant(0.0),
            ..AsyncConfig::default()
        },
        dataset,
        factory(features),
    );
    sim.run().expect("async run");
    // Instantaneous visibility + instantaneous training (the defaults):
    // activations are effectively serial, so at most a couple of tips
    // ever exist (the DAG degenerates towards a chain). This pins the
    // old single-global-tangle broadcast behaviour.
    assert!(
        sim.tangle().stats().tips <= 2,
        "expected a near-chain, got {} tips",
        sim.tangle().stats().tips
    );
}

#[test]
fn heterogeneous_cohorts_raise_publish_latency_deterministically() {
    let run = |delay: DelayModel| {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 8,
            samples_per_client: 40,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let mut sim = AsyncSimulation::new(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    seed: 7,
                    ..DagConfig::default()
                },
                total_activations: 40,
                delay,
                ..AsyncConfig::default()
            },
            dataset,
            factory(features),
        );
        sim.run().expect("async run");
        sim.metrics()
    };
    let flat = run(DelayModel::constant(1.0));
    let cohorts = run(DelayModel::Cohorts {
        slow_fraction: 0.5,
        fast: 1.0,
        slow: 12.0,
        jitter: 0.0,
    });
    assert_eq!(flat.mean_publish_latency, 1.0);
    assert!(
        cohorts.mean_publish_latency > flat.mean_publish_latency,
        "slow cohort must raise latency: {} vs {}",
        cohorts.mean_publish_latency,
        flat.mean_publish_latency
    );
    // Same seed, same model: the run itself is reproducible.
    let again = run(DelayModel::Cohorts {
        slow_fraction: 0.5,
        fast: 1.0,
        slow: 12.0,
        jitter: 0.0,
    });
    assert_eq!(again, cohorts);
}

#[test]
fn stale_tips_appear_and_discard_policy_prunes_them() {
    let run = |policy: StaleTipPolicy| {
        let dataset = fmnist_clustered(&FmnistConfig {
            num_clients: 6,
            samples_per_client: 40,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let mut sim = AsyncSimulation::new(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    ..DagConfig::default()
                },
                total_activations: 50,
                mean_interarrival: 0.5,
                delay: DelayModel::constant(0.0),
                compute: ComputeProfile::TwoSpeed {
                    slow_fraction: 0.5,
                    slowdown: 3.0,
                },
                train_time: 2.0,
                stale_policy: policy,
                gossip_fanout: 0,
                workers: 1,
            },
            dataset,
            factory(features),
        );
        sim.run().expect("async run");
        sim.metrics()
    };
    let lenient = run(StaleTipPolicy::PublishAnyway);
    assert!(
        lenient.stale_fraction() > 0.0,
        "long training over instant broadcast must produce stale tips"
    );
    let strict = run(StaleTipPolicy::Discard);
    assert!(strict.discarded_stale > 0, "nothing was discarded");
    assert!(
        strict.publications < lenient.publications,
        "discarding must reduce publications: {} vs {}",
        strict.publications,
        lenient.publications
    );
}

#[test]
fn execution_mode_trait_covers_both_simulators() {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 6,
        samples_per_client: 40,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let mut modes: Vec<Box<dyn ExecutionMode>> = vec![
        Box::new(dagfl::Simulation::new(
            DagConfig {
                rounds: 3,
                clients_per_round: 3,
                local_batches: 3,
                ..DagConfig::default()
            },
            dataset.clone(),
            factory(features),
        )),
        Box::new(AsyncSimulation::new(
            AsyncConfig {
                dag: DagConfig {
                    local_batches: 3,
                    ..DagConfig::default()
                },
                total_activations: 9,
                ..AsyncConfig::default()
            },
            dataset,
            factory(features),
        )),
    ];
    for mode in &mut modes {
        mode.run_to_completion().expect("mode runs");
        assert!(mode.progress() > 0);
        assert!(mode.recent_accuracy(6) > 0.0);
        assert!(mode.tangle_stats().transactions >= 1);
        assert!((0.0..=1.0).contains(&mode.approval_pureness()));
    }
}

#[test]
fn hardened_walk_survives_flooding_better_than_plain() {
    let run = |hardened: bool| {
        let dataset = fmnist_by_author(&FmnistConfig {
            num_clients: 8,
            samples_per_client: 60,
            ..FmnistConfig::default()
        });
        let features = dataset.feature_len();
        let mut scenario = GarbageAttackScenario::new(
            GarbageAttackConfig {
                dag: DagConfig {
                    rounds: 16,
                    clients_per_round: 5,
                    local_batches: 4,
                    walk_stop_margin: hardened.then_some(0.25),
                    publish_gate: if hardened {
                        PublishGate::BestParent
                    } else {
                        PublishGate::default()
                    },
                    ..DagConfig::default()
                }
                .with_tip_selector(TipSelector::default()),
                clean_rounds: 8,
                attacks_per_round: 1,
                weight_scale: 1.0,
            },
            dataset,
            factory(features),
        );
        scenario.run().expect("scenario runs");
        let m = scenario.measure().expect("measurement");
        let late = scenario
            .simulation()
            .history()
            .iter()
            .rev()
            .take(4)
            .map(|r| r.mean_accuracy())
            .sum::<f32>()
            / 4.0;
        (late, m.garbage_in_cone)
    };
    let (hardened_acc, hardened_cone) = run(true);
    let (plain_acc, plain_cone) = run(false);
    assert!(
        hardened_acc >= plain_acc,
        "hardening should not hurt: {hardened_acc} vs {plain_acc}"
    );
    assert!(
        hardened_cone <= plain_cone,
        "hardening should reduce approved garbage: {hardened_cone} vs {plain_cone}"
    );
}

#[test]
fn publication_dropout_slows_but_does_not_break_training() {
    let dataset = fmnist_clustered(&FmnistConfig {
        num_clients: 8,
        samples_per_client: 50,
        ..FmnistConfig::default()
    });
    let features = dataset.feature_len();
    let mut sim = dagfl::Simulation::new(
        DagConfig {
            rounds: 10,
            clients_per_round: 4,
            local_batches: 4,
            publication_dropout: 0.5,
            ..DagConfig::default()
        },
        dataset,
        factory(features),
    );
    sim.run().expect("run with dropout");
    let total_published: usize = sim.history().iter().map(|m| m.published).sum();
    // Roughly half of the would-be publications are lost; training still
    // makes progress on what survives.
    assert!(total_published > 0, "everything was dropped");
    assert!(sim.tangle().len() > 1);
    let late = sim.history().last().unwrap().mean_accuracy();
    assert!(late > 0.3, "training collapsed under dropout: {late}");
}
